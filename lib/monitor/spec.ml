type dir = Down | Up

type exp =
  | A
  | B
  | Reg of int
  | Const of int
  | Add of exp * exp
  | Sub of exp * exp

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type guard =
  | True
  | Cmp of exp * cmp * exp
  | Within of { x : exp; base : exp; offset : int; modulo : int; bound : int }
  | All of guard list
  | Any of guard list
  | Not of guard

type act = Set of int * exp

type rule = {
  r_from : string;
  r_dir : dir;
  r_msg : string;
  r_guard : guard;
  r_acts : act list;
  r_goto : string;
}

let rule ?(guard = True) ?(acts = []) from_ (d, msg) goto =
  { r_from = from_; r_dir = d; r_msg = msg; r_guard = guard; r_acts = acts;
    r_goto = goto }

let loops state msgs = List.map (fun m -> rule state m state) msgs

(* Compiled transition: state and message names resolved to indices. *)
type trans = { t_guard : guard; t_acts : act list; t_goto : int }

type t = {
  s_name : string;
  s_upper : string;
  s_lower : string;
  s_states : string array;
  s_msgs : (dir * string) array;
  s_nregs : int;
  (* table.(state).(mid) = transitions in authoring order *)
  s_table : trans array array array;
}

let name t = t.s_name
let upper t = t.s_upper
let lower t = t.s_lower
let msg_count t = Array.length t.s_msgs
let msg_dir t mid = fst t.s_msgs.(mid)
let state_name t i = t.s_states.(i)

let dir_name = function Down -> "down" | Up -> "up"

let msg_label t mid =
  let d, m = t.s_msgs.(mid) in
  dir_name d ^ " " ^ m

let index what arr eq x =
  let rec go i =
    if i = Array.length arr then
      invalid_arg (Printf.sprintf "Monitor.Spec: unknown %s" what)
    else if eq arr.(i) x then i
    else go (i + 1)
  in
  go 0

let msg_id t d m =
  index ("message " ^ dir_name d ^ " " ^ m) t.s_msgs ( = ) (d, m)

let make ~name ~upper ~lower ?(regs = 4) ~states ~msgs rules =
  if states = [] then invalid_arg "Monitor.Spec.make: no states";
  let s_states = Array.of_list states in
  let s_msgs = Array.of_list msgs in
  let t =
    { s_name = name; s_upper = upper; s_lower = lower; s_states; s_msgs;
      s_nregs = regs; s_table = [||] }
  in
  let sid s = index ("state " ^ s) s_states String.equal s in
  let table =
    Array.init (Array.length s_states) (fun _ ->
        Array.make (Array.length s_msgs) [])
  in
  List.iter
    (fun r ->
      let si = sid r.r_from in
      let mi = msg_id t r.r_dir r.r_msg in
      let gi = sid r.r_goto in
      table.(si).(mi) <-
        table.(si).(mi)
        @ [ { t_guard = r.r_guard; t_acts = r.r_acts; t_goto = gi } ])
    rules;
  { t with s_table = Array.map (Array.map Array.of_list) table }

type config = { mutable cs : int; regs : int array }

let init t = { cs = 0; regs = Array.make t.s_nregs 0 }

let rec eval regs ~a ~b = function
  | A -> a
  | B -> b
  | Reg i -> regs.(i)
  | Const n -> n
  | Add (x, y) -> eval regs ~a ~b x + eval regs ~a ~b y
  | Sub (x, y) -> eval regs ~a ~b x - eval regs ~a ~b y

let rec holds regs ~a ~b = function
  | True -> true
  | Cmp (x, op, y) -> (
      let x = eval regs ~a ~b x and y = eval regs ~a ~b y in
      match op with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | Within { x; base; offset; modulo; bound } ->
      let x = eval regs ~a ~b x and base = eval regs ~a ~b base in
      ((x - base + offset) mod modulo + modulo) mod modulo < bound
  | All gs -> List.for_all (holds regs ~a ~b) gs
  | Any gs -> List.exists (holds regs ~a ~b) gs
  | Not g -> not (holds regs ~a ~b g)

let step t cfg mid ~a ~b =
  let trans = t.s_table.(cfg.cs).(mid) in
  let n = Array.length trans in
  let rec go i =
    if i = n then false
    else
      let tr = trans.(i) in
      if holds cfg.regs ~a ~b tr.t_guard then begin
        List.iter
          (fun (Set (r, e)) -> cfg.regs.(r) <- eval cfg.regs ~a ~b e)
          tr.t_acts;
        cfg.cs <- tr.t_goto;
        true
      end
      else go (i + 1)
  in
  go 0

let explain t cfg mid ~a ~b =
  let state = t.s_states.(cfg.cs) in
  let why =
    if Array.length t.s_table.(cfg.cs).(mid) = 0 then "not allowed"
    else "guard failed"
  in
  ignore (a, b);
  Printf.sprintf "%s in state %s (%s)" (msg_label t mid) state why

let step_pure t (cs, regs) d m ~a ~b =
  let cfg = { cs; regs = Array.of_list regs } in
  let mid = msg_id t d m in
  if step t cfg mid ~a ~b then Ok (cfg.cs, Array.to_list cfg.regs)
  else
    Error
      (Printf.sprintf "%s: %s violated: %s a=%d b=%d" t.s_name
         (match d with Down -> t.s_upper | Up -> t.s_lower)
         (explain t cfg mid ~a ~b) a b)
