(** Runtime conformance monitors.

    A registry holds one monitor {e instance} per (connection, interface
    spec) pair — the key is the same connection/track name the tracer
    uses, so a violation message names a track the {!Sim.Soak} flight
    recorder can follow. Instances are attached at stack construction
    (cold); {!observe} is the hot path: a boolean load when monitoring is
    globally disabled, a table walk and integer mutations when enabled,
    and allocation only on the first violation of an instance (which also
    silences it, so one bug does not cascade into a report flood).

    Mirrors the global-switch discipline of {!Sublayer.Stats} and
    {!Sim.Tracer}: {!set_enabled} [false] makes every monitor a no-op. *)

type t
(** A monitor registry (one per simulation, shared by every endpoint). *)

val create : ?label:string -> unit -> t
val label : t -> string

val set_enabled : bool -> unit
(** Globally enable/disable all monitors (default: enabled). *)

val enabled : unit -> bool

type instance

val attach : t -> key:string -> Spec.t -> instance
(** [attach t ~key spec] creates a fresh monitor for one interface of the
    connection/endpoint named [key]. *)

val observe : instance -> int -> a:int -> b:int -> unit
(** [observe inst mid ~a ~b] feeds one interface crossing to the monitor
    ([mid] from {!Spec.msg_id}, resolved at attach time). On violation the
    instance records a message naming the guilty sublayer, direction,
    spec state and offending message, then goes dead. *)

val dead : instance -> bool

(** {2 Verdicts} *)

val violations : t -> string list
(** All violation messages, oldest first. *)

val violation_count : t -> int

val next_violation : t -> string option
(** Drain one not-yet-reported violation — the {!Sim.Soak} [invariant]
    hook: each violation surfaces exactly once. *)

val invariant : t -> unit -> string option
(** [invariant t] is [fun () -> next_violation t]. *)

val checked : t -> int
(** Total events checked across all instances. *)

val verdicts : t -> (string * int * int) list
(** Per-sublayer [(name, checked, violated)] counts, name-sorted: each
    observed event is attributed to the sublayer that sent it ([Down] →
    the spec's upper, [Up] → lower). The shape {!Sim.Soak.run}'s
    [?verdicts] hook expects. *)

val merged_verdicts : t list -> (string * int * int) list
(** Sum {!verdicts} across several registries (one per shard in a
    sharded run) — the explicit cross-domain merge, performed after the
    shard domains have joined. *)

val merged_invariant : t list -> unit -> string option
(** A {!Sim.Soak.run} [invariant] hook draining unreported violations
    from several registries, in registry order. *)
