(** Interface-protocol specifications — T2 contracts made executable.

    A spec is a small state machine over the {e directed} message alphabet
    of one sublayer interface: each observed crossing is a direction
    (request travelling [Down], indication travelling [Up]), a message
    name, and up to two integer arguments (lengths, offsets, sequence
    numbers). Transitions may guard on the arguments and on a handful of
    integer registers (window bases, high-water marks), so properties
    like "transmit offsets are contiguous" or "no data before
    [`Established]" compile to a table walk.

    The same compiled spec drives both the allocation-free runtime
    monitors ({!Runtime}) and the model-checking conformance products
    ({!Mcheck.Protocol}): {!step} mutates a config in place for the hot
    path, {!step_pure} threads immutable configs for state-space
    exploration. *)

type dir = Down | Up

(** Integer expressions over the event arguments [A]/[B], the instance
    registers and constants. *)
type exp =
  | A
  | B
  | Reg of int
  | Const of int
  | Add of exp * exp
  | Sub of exp * exp

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type guard =
  | True
  | Cmp of exp * cmp * exp
  | Within of { x : exp; base : exp; offset : int; modulo : int; bound : int }
      (** [((x - base + offset) mod modulo) < bound] — the modular-window
          test for wrap-around sequence spaces. *)
  | All of guard list
  | Any of guard list
  | Not of guard

type act = Set of int * exp  (** [Set (r, e)]: register [r] := [e]. *)

type rule
(** One transition of the authored spec. *)

val rule :
  ?guard:guard -> ?acts:act list -> string -> dir * string -> string -> rule
(** [rule from_state (dir, msg) to_state]: in [from_state], the message
    [msg] travelling [dir] is legal when [guard] (default [True]) holds;
    the spec moves to [to_state] applying [acts]. Rules are tried in
    authoring order; the first whose guard holds wins. An observed
    alphabet message with {e no} matching rule is a violation. *)

val loops : string -> (dir * string) list -> rule list
(** [loops state msgs]: unconditional self-loops — everything in [msgs]
    is legal in [state] and changes nothing. *)

type t

val make :
  name:string ->
  upper:string ->
  lower:string ->
  ?regs:int ->
  states:string list ->
  msgs:(dir * string) list ->
  rule list ->
  t
(** [make ~name ~upper ~lower ~states ~msgs rules] compiles a spec for
    the interface [name] between sublayer [upper] (sender of [Down]
    messages, blamed for their violations) and [lower] (sender of [Up]
    messages). The first state is initial; [regs] (default 4) registers
    start at 0. Raises [Invalid_argument] on unknown state or message
    names in [rules]. *)

val name : t -> string
val upper : t -> string
val lower : t -> string

val msg_id : t -> dir -> string -> int
(** Index of a directed message in the alphabet (the id {!step} wants);
    raises [Invalid_argument] if the message is not in the alphabet —
    probe glue resolves ids once, at attach time. *)

val msg_count : t -> int
val msg_dir : t -> int -> dir
val state_name : t -> int -> string
val msg_label : t -> int -> string
(** ["dir msg"] rendering of an alphabet id, for violation reports. *)

(** {2 Configurations} *)

type config = { mutable cs : int; regs : int array }

val init : t -> config

val step : t -> config -> int -> a:int -> b:int -> bool
(** [step spec cfg mid ~a ~b] advances [cfg] in place; [false] means the
    event violated the spec ([cfg] is left on the pre-violation state so
    the report can name it). Allocation-free. *)

val step_pure :
  t -> int * int list -> dir -> string -> a:int -> b:int ->
  (int * int list, string) result
(** Immutable variant keyed by message {e name} (cold path, for model
    checking): [Error] carries a human-readable violation. *)

val explain : t -> config -> int -> a:int -> b:int -> string
(** Describe why [step] refused this event from [cfg]'s current state. *)
