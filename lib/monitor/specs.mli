(** The T2 interface contracts of the three layers, as {!Spec} values.

    One spec per interface crossing the stacks already trace; the same
    values drive the runtime monitors (attached by each layer's [Conform]
    glue) and the {!Mcheck.Protocol} assume–guarantee products. Message
    argument conventions are documented per spec; [a]/[b] are lengths,
    stream offsets or sequence numbers. *)

val app : Spec.t
(** Application ⇄ OSR ("osr-app"): [`Established] at most once before
    any [`Data]; no stream events after [`Closed]/[`Reset]/[`Aborted].
    Down: connect, listen, write(a=len), read(a=n), close.
    Up: established, data(a=len), peer_closed, closed, reset, aborted. *)

val stream_rd : upper:string -> Spec.t
(** The OSR⇄RD contract for any stream sublayer sitting on RD — the
    {!Msg} stack reuses it with [~upper:"msg"]. *)

val osr_rd : Spec.t
(** OSR ⇄ RD ("osr-rd"): no [`Transmit]/block traffic before
    [`Established]; transmit offsets strictly contiguous (each [`Transmit
    (off, len, _)] has [off] = previous high-water mark, which then
    advances by [len] — persist probes included); [`Acked upto] monotone
    nondecreasing and never beyond the transmit high-water mark. *)

val rd_cm : Spec.t
(** RD ⇄ CM ("rd-cm"): no data [`Pdu] in either direction before
    [`Established] (a CM that speaks in [Syn_sent] is caught here);
    [`Close] only after establishment; [`Abort] is terminal. *)

val opaque :
  name:string -> upper:string -> lower:string -> ?min_down:int ->
  ?min_up:int -> unit -> Spec.t
(** A single-state sanity spec for opaque PDU boundaries (CM↔DM, CM↔Rec,
    Rec↔DM, detector↔framer, framer↔linecode): every crossing is a
    [pdu] with [a] = length, guarded to be at least [min_down]/[min_up]
    (default 1 / 0). Mostly a per-interface event counter. *)

type arq_variant = Sw | Gbn | Sr

val arq : variant:arq_variant -> window:int -> Spec.t
(** ARQ ⇄ detector ("arq-det"): data and ack PDUs with their decoded
    16-bit sequence numbers. Transmitted data must stay inside the
    variant's send window relative to the acknowledgements the ARQ has
    seen; received data must stay within a window of the acknowledgements
    it has sent — "retransmits beyond the window" trips here.
    Down: data(a=seq,b=len), ack(a=seq). Up: data(a=seq,b=len), ack(a=seq). *)

val arq_variant_of_name : string -> arq_variant option
(** Recognise the built-in ARQ module names ("arq-sw", "arq-gbn",
    "arq-sr"). *)

val fib : Spec.t
(** Router ⇄ FIB ("router-fib"): inserts and removes (the routing
    sublayer writing) keep a size register; a data-path lookup hit
    against a table the monitor knows to be empty, or a remove of a
    present entry when the size is zero, is an inconsistency.
    Down: insert(a=fresh), remove(a=present). Up: lookup(a=hit). *)
