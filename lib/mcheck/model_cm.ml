type params = { capacity : int; stale_syn : bool; max_retx : int }

let default = { capacity = 2; stale_syn = true; max_retx = 2 }

(* The current incarnation's ISNs are 1 (A) and 2 (B); a stale SYN from an
   earlier incarnation carries ISN 9. *)
let a_isn = 1
let b_isn = 2
let stale_isn = 9

type msg =
  | Syn of int             (* initiator's ISN *)
  | Syn_ack of int * int   (* responder's ISN, echoed initiator ISN *)
  | Ack of int * int       (* (initiator ISN, responder ISN) identity *)

type a_phase = A_syn_sent | A_est | A_gave_up
type b_phase = B_listen | B_syn_rcvd of int | B_est of int | B_gave_up

type state = {
  a : a_phase;
  b : b_phase;
  a_retx : int;
  b_retx : int;
  ab : msg list;  (* sorted multisets *)
  ba : msg list;
}

let insert m l = List.sort compare (m :: l)

let rec remove_one m = function
  | [] -> []
  | x :: rest -> if x = m then rest else x :: remove_one m rest

let distinct l = List.sort_uniq compare l

(* Transparent functor so the conformance wrappers below can see the
   concrete state type; [model] seals it. *)
module Make (P : sig
  val p : params
end) =
struct
    let p = P.p

    type nonrec state = state

    let name =
      Printf.sprintf "cm-handshake(c=%d%s,retx<=%d)" p.capacity
        (if p.stale_syn then ",stale-syn" else "")
        p.max_retx

    let initial =
      [ { a = A_syn_sent;
          b = B_listen;
          a_retx = 0;
          b_retx = 0;
          ab = (if p.stale_syn then [ Syn stale_isn; Syn a_isn ] else [ Syn a_isn ])
               |> List.sort compare;
          ba = [] } ]

    let next s =
      let moves = ref [] in
      let add label s' = moves := (label, s') :: !moves in
      let room ch = List.length ch < p.capacity + 2 in
      (* Retransmissions (bounded), mirroring CM's bootstrap timers. *)
      (match s.a with
      | A_syn_sent when s.a_retx < p.max_retx && room s.ab ->
          add "a_retx_syn" { s with a_retx = s.a_retx + 1; ab = insert (Syn a_isn) s.ab }
      | A_syn_sent when s.a_retx >= p.max_retx -> add "a_give_up" { s with a = A_gave_up }
      | _ -> ());
      (match s.b with
      | B_syn_rcvd r when s.b_retx < p.max_retx && room s.ba ->
          add "b_retx_synack"
            { s with b_retx = s.b_retx + 1; ba = insert (Syn_ack (b_isn, r)) s.ba }
      | B_syn_rcvd _ when s.b_retx >= p.max_retx -> add "b_give_up" { s with b = B_gave_up }
      | _ -> ());
      (* Channel loss. *)
      List.iter
        (fun m -> add "drop_ab" { s with ab = remove_one m s.ab })
        (distinct s.ab);
      List.iter
        (fun m -> add "drop_ba" { s with ba = remove_one m s.ba })
        (distinct s.ba);
      (* Deliveries to B. *)
      List.iter
        (fun m ->
          let s = { s with ab = remove_one m s.ab } in
          match (m, s.b) with
          | Syn isn, B_listen when room s.ba ->
              add "b_syn"
                { s with b = B_syn_rcvd isn; ba = insert (Syn_ack (b_isn, isn)) s.ba }
          | Syn _, B_syn_rcvd r when room s.ba ->
              (* Duplicate SYN: B repeats its SYN|ACK for the incarnation
                 it believes in (exactly what Cm.handle_down_ind does). *)
              add "b_dup_syn" { s with ba = insert (Syn_ack (b_isn, r)) s.ba }
          | Ack (ai, bi), B_syn_rcvd r when ai = r && bi = b_isn ->
              add "b_est" { s with b = B_est r }
          | Ack _, _ -> add "b_stale_ack" s
          | Syn _, _ -> add "b_syn_ignored" s
          | Syn_ack _, _ -> add "b_misdirected" s)
        (distinct s.ab);
      (* Deliveries to A. *)
      List.iter
        (fun m ->
          let s = { s with ba = remove_one m s.ba } in
          match (m, s.a) with
          | Syn_ack (bi, echo), A_syn_sent when echo = a_isn && room s.ab ->
              add "a_est" { s with a = A_est; ab = insert (Ack (a_isn, bi)) s.ab }
          | Syn_ack (bi, echo), A_est when echo = a_isn && room s.ab ->
              (* Lost final ACK: repeat it. *)
              add "a_reack" { s with ab = insert (Ack (a_isn, bi)) s.ab }
          | Syn_ack _, _ -> add "a_stale_synack" s
          | (Syn _ | Ack _), _ -> add "a_misdirected" s)
        (distinct s.ba);
      !moves

    let invariant s =
      match s.b with
      | B_est r when r <> a_isn ->
          Some (Printf.sprintf "B established against stale ISN %d" r)
      | _ -> None

    let accepting s =
      match (s.a, s.b) with
      | A_est, B_est _ -> true
      | A_gave_up, _ | _, B_gave_up -> true
      | _ -> false
end

let model p : (module Checker.MODEL) =
  (module Make (struct
    let p = p
  end))

(* --- Assume–guarantee conformance against the RD<->CM spec --- *)

(* Each wrapper watches one endpoint's RD<->CM interface: the handshake
   may only surface [Established] out of the opening phase (or nothing,
   if the endpoint gives up), never payload PDUs — the discipline the
   runtime monitors enforce on the live stacks. *)
let observed_initiator p : (module Protocol.OBSERVED) =
  (module struct
    include Make (struct
      let p = p
    end)

    let spec = Monitor.Specs.rd_cm
    let boot = [ (Monitor.Spec.Down, "connect", 0, 0) ]

    let observe _s label _s' =
      match label with
      | "a_est" -> [ (Monitor.Spec.Up, "established", a_isn, b_isn) ]
      | "a_give_up" -> [ (Monitor.Spec.Up, "closed", 0, 0) ]
      | _ -> []
  end)

let observed_responder p : (module Protocol.OBSERVED) =
  (module struct
    include Make (struct
      let p = p
    end)

    let spec = Monitor.Specs.rd_cm
    let boot = [ (Monitor.Spec.Down, "listen", 0, 0) ]

    let observe _s label _s' =
      match label with
      | "b_est" -> [ (Monitor.Spec.Up, "established", b_isn, 0) ]
      | "b_give_up" -> [ (Monitor.Spec.Up, "closed", 0, 0) ]
      | _ -> []
  end)

(* --- FIN teardown choreography --- *)

type cmsg = Fin | Fin_ack

type close_phase =
  | Est
  | Fin_w1 of int
  | Fin_w2
  | Closing of int
  | Time_wait
  | Close_wait
  | Last_ack of int
  | Closed

type close_state = {
  pa : close_phase;
  pb : close_phase;
  cab : cmsg list;
  cba : cmsg list;
}

let close_model ~capacity =
  (module struct
    type state = close_state

    let name = Printf.sprintf "cm-teardown(c=%d)" capacity

    let max_retx = 2

    let initial = [ { pa = Est; pb = Est; cab = []; cba = [] } ]

    (* One endpoint's transitions; [out] is its outgoing channel. *)
    let local_moves phase out room =
      (* (label, phase', sends) *)
      match phase with
      | Est -> [ ("close", Fin_w1 0, [ Fin ]) ]
      | Close_wait -> [ ("close", Last_ack 0, [ Fin ]) ]
      | Fin_w1 n when n < max_retx && room -> [ ("retx_fin", Fin_w1 (n + 1), [ Fin ]) ]
      | Closing n when n < max_retx && room -> [ ("retx_fin", Closing (n + 1), [ Fin ]) ]
      | Last_ack n when n < max_retx && room -> [ ("retx_fin", Last_ack (n + 1), [ Fin ]) ]
      | Fin_w1 n when n >= max_retx -> [ ("give_up", Closed, []) ]
      | Closing n when n >= max_retx -> [ ("give_up", Closed, []) ]
      | Last_ack n when n >= max_retx -> [ ("give_up", Closed, []) ]
      | Time_wait -> [ ("tw_expire", Closed, []) ]
      | Fin_w2 ->
          (* FIN_WAIT_2 idle timeout, mirroring Cm: without it, a peer
             that gave up leaves us deadlocked waiting for a FIN. *)
          [ ("fw2_timeout", Closed, []) ]
      | _ -> ignore out; []

    let receive phase msg =
      (* (phase', replies) — mirrors Cm.handle_down_ind's teardown rows *)
      match (phase, msg) with
      | Est, Fin -> Some (Close_wait, [ Fin_ack ])
      | Fin_w1 n, Fin -> Some (Closing n, [ Fin_ack ])
      | Fin_w1 _, Fin_ack -> Some (Fin_w2, [])
      | Fin_w2, Fin -> Some (Time_wait, [ Fin_ack ])
      | Closing _, Fin_ack -> Some (Time_wait, [])
      | Closing n, Fin -> Some (Closing n, [ Fin_ack ])
      | Last_ack _, Fin_ack -> Some (Closed, [])
      | (Close_wait | Last_ack _), Fin ->
          Some (phase, [ Fin_ack ])
      | Time_wait, Fin -> Some (Time_wait, [ Fin_ack ])
      | _ -> Some (phase, [])

    let insert_all msgs ch = List.fold_left (fun ch m -> List.sort compare (m :: ch)) ch msgs

    let next s =
      let moves = ref [] in
      let add label s' = moves := (label, s') :: !moves in
      let room ch = List.length ch < capacity in
      (* A-side local *)
      List.iter
        (fun (l, pa, sends) ->
          if sends = [] || room s.cab then
            add ("a_" ^ l) { s with pa; cab = insert_all sends s.cab })
        (local_moves s.pa s.cab (room s.cab));
      List.iter
        (fun (l, pb, sends) ->
          if sends = [] || room s.cba then
            add ("b_" ^ l) { s with pb; cba = insert_all sends s.cba })
        (local_moves s.pb s.cba (room s.cba));
      (* loss *)
      List.iter (fun m -> add "drop_ab" { s with cab = remove_one m s.cab }) (distinct s.cab);
      List.iter (fun m -> add "drop_ba" { s with cba = remove_one m s.cba }) (distinct s.cba);
      (* delivery *)
      List.iter
        (fun m ->
          let s' = { s with cab = remove_one m s.cab } in
          match receive s.pb m with
          | Some (pb, replies) when replies = [] || room s'.cba ->
              add "dlv_to_b" { s' with pb; cba = insert_all replies s'.cba }
          | _ -> ())
        (distinct s.cab);
      List.iter
        (fun m ->
          let s' = { s with cba = remove_one m s.cba } in
          match receive s.pa m with
          | Some (pa, replies) when replies = [] || room s'.cab ->
              add "dlv_to_a" { s' with pa; cab = insert_all replies s'.cab }
          | _ -> ())
        (distinct s.cba);
      !moves

    let invariant _ = None

    let accepting s =
      (* Teardown may legitimately end in Closed on both sides, possibly
         via give-up under persistent loss; TIME_WAIT also counts as done
         pending its timer. *)
      match (s.pa, s.pb) with
      | (Closed | Time_wait), (Closed | Time_wait) -> true
      | _ -> false
  end : Checker.MODEL)
