type params = {
  n : int;
  window : int;
  capacity : int;
  retransmit : bool;
  duplicate : bool;
}

let default = { n = 3; window = 2; capacity = 2; retransmit = true; duplicate = true }

type state = {
  snd_next : int;
  snd_acked : int;
  data_ch : int list;  (* sorted multiset of segment ids in flight *)
  ack_ch : int list;   (* sorted multiset of cumulative acks in flight *)
  rcv : int;           (* bitmask of received segments *)
}

let insert x l = List.sort Int.compare (x :: l)

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if x = y then rest else y :: remove_one x rest

let rec cumulative rcv i = if rcv land (1 lsl i) = 0 then i else cumulative rcv (i + 1)

let distinct l = List.sort_uniq Int.compare l

(* The model body lives in a transparent functor so the conformance
   wrappers below can see the concrete state type; [model] seals it. *)
module Make (P : sig
  val p : params
end) =
struct
    let p = P.p

    type nonrec state = state

    let name =
      Printf.sprintf "rd(n=%d,w=%d,c=%d%s%s)" p.n p.window p.capacity
        (if p.retransmit then "" else ",no-retx")
        (if p.duplicate then "" else ",no-dup")

    let initial = [ { snd_next = 0; snd_acked = 0; data_ch = []; ack_ch = []; rcv = 0 } ]

    let next s =
      let moves = ref [] in
      let add label s' = moves := (label, s') :: !moves in
      (* Sender submits a fresh segment within its window. *)
      if
        s.snd_next < p.n
        && s.snd_next - s.snd_acked < p.window
        && List.length s.data_ch < p.capacity
      then
        add
          (Printf.sprintf "send%d" s.snd_next)
          { s with snd_next = s.snd_next + 1; data_ch = insert s.snd_next s.data_ch };
      (* Timeout: retransmit any unacked segment not currently in flight. *)
      if p.retransmit then
        for i = s.snd_acked to s.snd_next - 1 do
          if (not (List.mem i s.data_ch)) && List.length s.data_ch < p.capacity then
            add (Printf.sprintf "retx%d" i) { s with data_ch = insert i s.data_ch }
        done;
      (* Channel actions on each distinct in-flight message. *)
      List.iter
        (fun i ->
          add (Printf.sprintf "drop_d%d" i) { s with data_ch = remove_one i s.data_ch };
          if p.duplicate && List.length s.data_ch < p.capacity then
            add (Printf.sprintf "dup_d%d" i) { s with data_ch = insert i s.data_ch };
          (* Delivery: the receiver dedups via its bitmask and acks
             cumulatively. *)
          let rcv = s.rcv lor (1 lsl i) in
          let ack = cumulative rcv 0 in
          let ack_ch =
            if List.length s.ack_ch < p.capacity then insert ack s.ack_ch else s.ack_ch
          in
          add
            (Printf.sprintf "dlv_d%d" i)
            { s with data_ch = remove_one i s.data_ch; rcv; ack_ch })
        (distinct s.data_ch);
      List.iter
        (fun a ->
          add (Printf.sprintf "drop_a%d" a) { s with ack_ch = remove_one a s.ack_ch };
          if p.duplicate && List.length s.ack_ch < p.capacity then
            add (Printf.sprintf "dup_a%d" a) { s with ack_ch = insert a s.ack_ch };
          add
            (Printf.sprintf "dlv_a%d" a)
            { s with ack_ch = remove_one a s.ack_ch; snd_acked = max s.snd_acked a })
        (distinct s.ack_ch);
      !moves

    let invariant s =
      if s.snd_acked > cumulative s.rcv 0 then
        Some
          (Printf.sprintf "ack %d ahead of receiver's cumulative %d" s.snd_acked
             (cumulative s.rcv 0))
      else if s.rcv lsr s.snd_next <> 0 then Some "phantom segment received"
      else if s.snd_acked > s.snd_next then Some "acked more than sent"
      else None

    let accepting s = s.snd_acked = p.n
end

let model p : (module Checker.MODEL) =
  (module Make (struct
    let p = p
  end))

(* --- Assume–guarantee conformance against the OSR<->RD spec --- *)

(* Parse the trailing integer of labels like "send2" / "dlv_a3". *)
let labeled prefix label =
  let pl = String.length prefix in
  if String.length label > pl && String.sub label 0 pl = prefix then
    int_of_string_opt (String.sub label pl (String.length label - pl))
  else None

(* The sending endpoint's OSR<->RD interface: every admitted segment is
   a contiguous [Transmit], every cumulative-ack advance an [Acked] that
   is monotone and never overtakes transmission. The model is
   mid-connection, so the spec boots through connect/established. *)
let observed_sender p : (module Protocol.OBSERVED) =
  (module struct
    include Make (struct
      let p = p
    end)

    let spec = Monitor.Specs.osr_rd

    let boot =
      [ (Monitor.Spec.Down, "connect", 0, 0);
        (Monitor.Spec.Up, "established", 0, 0) ]

    let observe s label _s' =
      match labeled "send" label with
      | Some i -> [ (Monitor.Spec.Down, "transmit", i, 1) ]
      | None -> (
          match labeled "dlv_a" label with
          | Some a when a > s.snd_acked -> [ (Monitor.Spec.Up, "acked", a, 0) ]
          | _ -> [])
  end)

(* The receiving endpoint's interface: every delivered segment surfaces
   as a [Segment] indication. *)
let observed_receiver p : (module Protocol.OBSERVED) =
  (module struct
    include Make (struct
      let p = p
    end)

    let spec = Monitor.Specs.osr_rd

    let boot =
      [ (Monitor.Spec.Down, "listen", 0, 0);
        (Monitor.Spec.Up, "established", 0, 0) ]

    let observe _s label _s' =
      match labeled "dlv_d" label with
      | Some i -> [ (Monitor.Spec.Up, "segment", i, 1) ]
      | None -> []
  end)
