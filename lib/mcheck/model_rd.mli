(** Bounded model of the RD sublayer alone (paper §4.2's property,
    checked compositionally): a window-[w] sender transfers [n] segments
    over a lossy, duplicating, reordering channel, {e assuming} CM's
    postcondition (the network holds no segments from other
    incarnations). Safety: the cumulative ack never runs ahead of what
    the receiver actually holds, and no phantom segment is ever received.
    With [retransmit = false] the checker finds the inevitable deadlock —
    the reason retransmission exists. *)

type params = {
  n : int;          (** segments to transfer *)
  window : int;
  capacity : int;   (** per-direction channel capacity *)
  retransmit : bool;
  duplicate : bool; (** channel may duplicate messages *)
}

val default : params
(** n = 3, window = 2, capacity = 2, retransmit and duplication on. *)

val model : params -> (module Checker.MODEL)

val observed_sender : params -> (module Protocol.OBSERVED)
val observed_receiver : params -> (module Protocol.OBSERVED)
(** The same model annotated with its OSR⇄RD interface crossings, for
    {!Protocol.conformance}: the sender's transmits must be contiguous
    and its ack notifications monotone; the receiver's deliveries are
    [Segment] indications. Both run against {!Monitor.Specs.osr_rd} —
    the spec the runtime monitors execute. *)
