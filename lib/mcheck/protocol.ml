module type OBSERVED = sig
  include Checker.MODEL

  val spec : Monitor.Spec.t

  val boot : (Monitor.Spec.dir * string * int * int) list

  val observe :
    state -> string -> state -> (Monitor.Spec.dir * string * int * int) list
end

let conformance (module M : OBSERVED) : (module Checker.MODEL) =
  (module struct
    type state = {
      inner : M.state;
      cfg : int * int list;
      err : string option;  (* first spec violation on the path here *)
    }

    let name = M.name ^ " |= " ^ Monitor.Spec.name M.spec

    let boot_cfg =
      let c = Monitor.Spec.init M.spec in
      let cfg0 = (c.Monitor.Spec.cs, Array.to_list c.Monitor.Spec.regs) in
      List.fold_left
        (fun cfg (dir, msg, a, b) ->
          match Monitor.Spec.step_pure M.spec cfg dir msg ~a ~b with
          | Ok cfg -> cfg
          | Error e ->
              invalid_arg
                (Printf.sprintf "Protocol.conformance: boot violates %s: %s"
                   (Monitor.Spec.name M.spec) e))
        cfg0 M.boot

    let initial =
      List.map (fun s -> { inner = s; cfg = boot_cfg; err = None }) M.initial

    let next s =
      match s.err with
      | Some _ -> []  (* nonconformance is terminal; invariant reports it *)
      | None ->
          List.map
            (fun (label, inner) ->
              let rec thread cfg = function
                | [] -> Ok cfg
                | (dir, msg, a, b) :: rest -> (
                    match Monitor.Spec.step_pure M.spec cfg dir msg ~a ~b with
                    | Ok cfg -> thread cfg rest
                    | Error _ as e -> e)
              in
              match thread s.cfg (M.observe s.inner label inner) with
              | Ok cfg -> (label, { inner; cfg; err = None })
              | Error e -> (label, { inner; cfg = s.cfg; err = Some e }))
            (M.next s.inner)

    let invariant s =
      match s.err with
      | Some e -> Some ("interface conformance: " ^ e)
      | None -> M.invariant s.inner

    let accepting s = s.err = None && M.accepting s.inner
  end : Checker.MODEL)
