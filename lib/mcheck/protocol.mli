(** Assume–guarantee conformance: check that a bounded sublayer model
    satisfies its own T2 interface specification — the {e same}
    {!Monitor.Spec.t} objects the runtime monitors execute, so what the
    checker proves over every reachable state is exactly what the
    monitors enforce over every observed trace.

    An {!OBSERVED} model annotates each transition with the interface
    crossings it implies; {!conformance} builds the synchronous product
    of the model with the spec automaton and hands it to the ordinary
    {!Checker}. A spec violation surfaces as an invariant failure, so
    the report carries the shortest event trace to nonconformance. *)

module type OBSERVED = sig
  include Checker.MODEL

  val spec : Monitor.Spec.t

  val boot : (Monitor.Spec.dir * string * int * int) list
  (** Crossings implied by reaching the model's initial states (e.g. a
      mid-connection model boots the spec through connect/established).
      Raises [Invalid_argument] from {!conformance} if they violate. *)

  val observe :
    state -> string -> state -> (Monitor.Spec.dir * string * int * int) list
  (** [observe s label s'] — the interface crossings the labelled
      transition [s --label--> s'] makes, in order, each as
      [(dir, msg, a, b)]. Internal moves observe nothing. *)
end

val conformance : (module OBSERVED) -> (module Checker.MODEL)
