(** Bounded model of the CM sublayer alone: the three-way handshake with
    loss, duplication and retransmission, optionally with a {e stale SYN}
    from an earlier incarnation already sitting in the network (the
    attack RFC 793's time-based ISNs and RFC 1948's hashed ISNs both
    target, see paper §3).

    Safety: if an endpoint reaches ESTABLISHED it holds exactly the
    current incarnation's ISN pair — never the stale one. This is CM's
    postcondition; {!Model_rd} assumes it, which is what compositional
    (sublayer-at-a-time) verification means. *)

type params = {
  capacity : int;
  stale_syn : bool;  (** a SYN from an old incarnation is in flight *)
  max_retx : int;    (** bound on handshake retransmissions *)
}

val default : params

val model : params -> (module Checker.MODEL)

val observed_initiator : params -> (module Protocol.OBSERVED)
val observed_responder : params -> (module Protocol.OBSERVED)
(** The handshake model annotated with one endpoint's RD⇄CM interface
    crossings, for {!Protocol.conformance} against
    {!Monitor.Specs.rd_cm}: [Established] may only surface out of the
    opening phase, and never a payload PDU — the same spec the runtime
    monitors execute on the live stacks. *)

(** {!model} for the FIN teardown choreography: both sides close
    (including simultaneously); safety is mutual eventual closure without
    deadlock from any interleaving. *)
val close_model : capacity:int -> (module Checker.MODEL)
