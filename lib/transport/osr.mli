(** The ordering / segmenting / rate-control sublayer — the top of the
    sublayered TCP (paper §3).

    Sender side, OSR segments the application byte stream by MSS and
    decides when each segment is "ready" for RD: the congestion window
    (pluggable {!Cc} algorithm, fed by RD's [`Acked]/[`Loss] summaries)
    and the peer's advertised flow-control window gate release. Receiver
    side, OSR pastes out-of-order segments back into the in-order byte
    stream and advertises its remaining buffer in the OSR header block it
    pushes down to RD. OSR guarantees TCP's main property — received
    bytes = sent bytes, in order — on top of RD's exactly-once segments. *)

type t

val initial :
  ?stats:Sublayer.Stats.scope ->
  ?cc_stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  ?pool:Bitkit.Pool.t ->
  Config.t ->
  now:(unit -> float) ->
  t
(** Counters (when [stats] is given): [bytes_written], [bytes_delivered],
    [segments_out], [copied_app_bytes]. When [cc_stats] is given the
    congestion-control instance created at establishment is wrapped with
    {!Cc.instrument} under that scope. When [span] is given, every write
    opens a fresh-trace [buffer] span (closed when segmented) and every
    accepted segment a [reasm] span (closed at in-order delivery); traces
    are handed to RD under local offset keys.

    In-order segments are delivered to the application as views of the
    incoming wire buffer — no copy, no [copied_app_bytes] charge. Only
    out-of-order arrivals are staged in owned storage across events: a
    slot of [pool] when given (heap on overrun), a heap string
    otherwise. *)

type stats = {
  mutable bytes_written : int;    (** accepted from the application *)
  mutable bytes_delivered : int;  (** handed to the application in order *)
  mutable segments_out : int;
}

val stats : t -> stats
(** Fresh snapshot per call. *)

val cc_name : t -> string
val cwnd : t -> float
(** Current congestion window in bytes (MSS-sized before establishment). *)

val peer_window : t -> int
val unsent_bytes : t -> int
val stream_finished : t -> bool
(** All written bytes are acknowledged and no close is pending. *)

val unread_bytes : t -> int
(** Delivered bytes the application has not yet consumed via [`Read]. *)

type timer = Persist

include
  Sublayer.Machine.S
    with type t := t
     and type up_req = Iface.app_req
     and type up_ind = Iface.app_ind
     and type down_req = Iface.rd_req
     and type down_ind = Iface.rd_ind
     and type timer := timer
