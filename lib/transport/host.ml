module I = Sublayer.Instrument
module Link = Sublayer.Link

type endpoint = {
  ep_from_wire : Bitkit.Slice.t -> unit;
  ep_connect : unit -> unit;
  ep_listen : unit -> unit;
  ep_write : string -> unit;
  ep_read : int -> unit;
  ep_close : unit -> unit;
  ep_abort : unit -> unit;
  ep_finished : unit -> bool;
}

type factory = {
  fname : string;
  peek : Bitkit.Slice.t -> (int * int) option;
  make :
    ?ins:Sublayer.Instrument.t ->
    Sim.Engine.t ->
    name:string ->
    Config.t ->
    local_port:int ->
    remote_port:int ->
    transmit:(Bitkit.Slice.t -> unit) ->
    events:(Iface.app_ind -> unit) ->
    endpoint;
}

let sublayered =
  {
    fname = "sublayered";
    peek = Segment.peek_ports;
    make =
      (fun ?(ins = I.none) engine ~name cfg ~local_port ~remote_port ~transmit
           ~events ->
        let app_req, app_ind = Conform.app ins.I.monitors ~conn:name in
        let t =
          Tcp_sublayered.create engine ~ins ~name cfg ~local_port ~remote_port
            ~transmit
            ~events:(fun e -> app_ind e; events e)
        in
        {
          ep_from_wire = Tcp_sublayered.from_wire t;
          ep_connect = (fun () -> app_req `Connect; Tcp_sublayered.connect t);
          ep_listen = (fun () -> app_req `Listen; Tcp_sublayered.listen t);
          ep_write = (fun str -> app_req (`Write str); Tcp_sublayered.write t str);
          ep_read = (fun n -> app_req (`Read n); Tcp_sublayered.read t n);
          ep_close = (fun () -> app_req `Close; Tcp_sublayered.close t);
          ep_abort = (fun () -> Tcp_sublayered.halt t);
          ep_finished = (fun () -> Tcp_sublayered.stream_finished t);
        });
  }

type conn = {
  c_local : int;
  c_remote : int;
  c_accepted : bool;  (** spawned by a listener *)
  ep : endpoint;
  mutable auto_read : bool;
  buf : Buffer.t;
  mutable c_established : bool;
  mutable c_peer_closed : bool;
  mutable c_closed : bool;
  mutable c_reset : bool;
  mutable c_aborted : bool;
  mutable user_data : (string -> unit) option;
  mutable user_event : (Iface.app_ind -> unit) option;
}

type t = {
  engine : Sim.Engine.t;
  config : Config.t;
  factory : factory;
  name : string;
  link : Bitkit.Slice.t Link.t;
  ins : I.t;
  conns : (int * int, conn) Hashtbl.t;
  listeners : (int, unit) Hashtbl.t;
  mutable accept_cb : (conn -> unit) option;
  mutable next_ephemeral : int;
}

let stats_registry host = host.ins.I.stats
let wire_link host = host.link

let handle_event host c (e : Iface.app_ind) =
  (match e with
  | `Established ->
      let first = not c.c_established in
      c.c_established <- true;
      if first && c.c_accepted then begin
        match host.accept_cb with Some cb -> cb c | None -> ()
      end
  | `Data s -> (
      (* The app-ingest copy: the delivered view is only valid for this
         event, so the stream buffer takes the bytes now. *)
      Bitkit.Slice.add_to_buffer c.buf s;
      if c.auto_read then c.ep.ep_read (Bitkit.Slice.length s);
      match c.user_data with Some cb -> cb (Bitkit.Slice.to_string s) | None -> ())
  | `Peer_closed -> c.c_peer_closed <- true
  | `Closed -> c.c_closed <- true
  | `Reset ->
      c.c_reset <- true;
      c.c_closed <- true
  | `Aborted ->
      c.c_aborted <- true;
      c.c_closed <- true);
  match c.user_event with Some cb -> cb e | None -> ()

let make_conn host ~local_port ~remote_port ~accepted =
  let cref = ref None in
  let events e =
    match !cref with Some c -> handle_event host c e | None -> ()
  in
  let name = Printf.sprintf "%s:%d>%d" host.name local_port remote_port in
  let ep =
    host.factory.make ~ins:host.ins host.engine ~name host.config ~local_port
      ~remote_port
      ~transmit:(fun s -> Link.transmit host.link s)
      ~events
  in
  let c =
    { c_local = local_port; c_remote = remote_port; c_accepted = accepted; ep;
      auto_read = true; buf = Buffer.create 256; c_established = false;
      c_peer_closed = false;
      c_closed = false; c_reset = false; c_aborted = false;
      user_data = None; user_event = None }
  in
  cref := Some c;
  Hashtbl.replace host.conns (local_port, remote_port) c;
  c

let alloc_port host =
  let rec go () =
    let p = host.next_ephemeral in
    host.next_ephemeral <-
      (if host.next_ephemeral >= 65535 then 49152 else host.next_ephemeral + 1);
    if Hashtbl.fold (fun (l, _) _ acc -> acc || l = p) host.conns false then go () else p
  in
  go ()

(* Link death: every live connection is torn down the way RD's give-up
   would tear it down — stack halted (timers cancelled, entry points
   inert), then the local [`Aborted] indication. Inner stacks riding a
   dead tunnel must not keep retransmitting into the void. *)
let abort_conn host c =
  if not c.c_closed then begin
    c.ep.ep_abort ();
    handle_event host c `Aborted
  end

let connect host ?local_port ~remote_port () =
  let local_port = match local_port with Some p -> p | None -> alloc_port host in
  let c = make_conn host ~local_port ~remote_port ~accepted:false in
  if Link.alive host.link then c.ep.ep_connect () else abort_conn host c;
  c

let listen host ~port = Hashtbl.replace host.listeners port ()

let on_accept host cb = host.accept_cb <- Some cb

let from_wire host wire =
  match host.factory.peek wire with
  | None -> ()
  | Some (src_port, dst_port) -> (
      match Hashtbl.find_opt host.conns (dst_port, src_port) with
      | Some c -> c.ep.ep_from_wire wire
      | None ->
          if Hashtbl.mem host.listeners dst_port then begin
            let c =
              make_conn host ~local_port:dst_port ~remote_port:src_port ~accepted:true
            in
            c.ep.ep_listen ();
            c.ep.ep_from_wire wire
          end)

let create engine ?(config = Config.default) ?(factory = sublayered)
    ?(ins = I.none) ~name ~link () =
  (* [ins.telemetry] is only forwarded to the endpoint factory here (it
     gates the Alloc cells). Registering [ins.stats] as a sampling source
     is the registry owner's job — hosts can share one registry (the
     fabric); {!Sublayer.Stats.telemetry_source} is idempotent per pair
     anyway. *)
  let name = I.tagged_name ins name in
  (* The link's MTU hint caps the segment payload: a tunnel that frames
     inner segments into an outer stream tells inner stacks how much
     fits per record. *)
  let config =
    match Link.mtu link with
    | Some m -> { config with Config.mss = min config.Config.mss m }
    | None -> config
  in
  let host =
    { engine; config; factory; name; link; ins;
      conns = Hashtbl.create 8;
      listeners = Hashtbl.create 4; accept_cb = None; next_ephemeral = 49152 }
  in
  Link.attach link (from_wire host);
  Link.on_death link (fun () ->
      Hashtbl.iter (fun _ c -> abort_conn host c) host.conns);
  host

let write c s = c.ep.ep_write s
let close c = c.ep.ep_close ()

let set_autoread c enabled = c.auto_read <- enabled

let consume c n = c.ep.ep_read n
let received c = Buffer.contents c.buf
let received_length c = Buffer.length c.buf

let take_received c =
  let s = Buffer.contents c.buf in
  Buffer.clear c.buf;
  s

let established c = c.c_established
let peer_closed c = c.c_peer_closed
let closed c = c.c_closed
let was_reset c = c.c_reset
let aborted c = c.c_aborted
let finished c = c.ep.ep_finished ()
let local_port c = c.c_local
let remote_port c = c.c_remote
let on_data c cb = c.user_data <- Some cb
let on_event c cb = c.user_event <- Some cb

let connections host = Hashtbl.fold (fun _ c acc -> c :: acc) host.conns []

(* A CRC-32 guard standing in for the data link's error-detection
   sublayer: corrupted wire segments are dropped, never delivered. The
   digest is computed in place over the slice view ([digest_sub]); only
   protection materialises a new buffer (it must append the trailer). *)
(* Built eagerly at module init: [lazy] is not domain-safe (two shard
   domains racing to force it raise [Lazy.Undefined]), and the table is
   1 KiB built once, so there is nothing worth deferring. *)
let crc_engine = Bitkit.Crc.make Bitkit.Crc.crc32

let guard_digest sl =
  Bitkit.Crc.digest_sub crc_engine sl.Bitkit.Slice.base
    sl.Bitkit.Slice.off sl.Bitkit.Slice.len

let guard_protect sl =
  let d = guard_digest sl in
  let n = Bitkit.Slice.length sl in
  let b = Bytes.create (n + 4) in
  Bitkit.Slice.blit sl b 0;
  for i = 0 to 3 do
    Bytes.set b (n + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical d (8 * (3 - i))) land 0xFF))
  done;
  Bitkit.Slice.of_string (Bytes.unsafe_to_string b)

let guard_verify sl =
  let n = Bitkit.Slice.length sl in
  if n < 4 then None
  else begin
    let body = Bitkit.Slice.sub sl ~pos:0 ~len:(n - 4) in
    let d = guard_digest body in
    let ok = ref true in
    for i = 0 to 3 do
      let expect =
        Int64.to_int (Int64.shift_right_logical d (8 * (3 - i))) land 0xFF
      in
      if Char.code (Bitkit.Slice.get sl (n - 4 + i)) <> expect then ok := false
    done;
    if !ok then Some body else None
  end

let pair_channels engine ?(config = Config.default) ?(factory_a = sublayered)
    ?(factory_b = sublayered) ?(guard = false) ?stats_a ?stats_b ?tracer
    ?monitors ?telemetry ?pool ?(level = 0) channel_config =
  (* The hosts sit on [Link]s; the channels deliver into them. Links are
     created first (channels and hosts both reference them), transmit
     closures tied once the channels exist. *)
  let link_a = Link.make ~id:"A" () in
  let link_b = Link.make ~id:"B" () in
  Option.iter
    (fun p ->
      Sim.Engine.after_event engine (fun () -> Bitkit.Pool.drain_deferred p))
    pool;
  let deliver target s =
    if guard then
      match guard_verify s with Some body -> Link.deliver target body | None -> ()
    else Link.deliver target s
  in
  let ab =
    Sim.Channel.create engine channel_config ~size:Bitkit.Slice.length
      ~corrupt:Sim.Channel.corrupt_slice
      ~deliver:(fun s -> deliver link_b s)
      ()
  in
  let ba =
    Sim.Channel.create engine channel_config ~size:Bitkit.Slice.length
      ~corrupt:Sim.Channel.corrupt_slice
      ~deliver:(fun s -> deliver link_a s)
      ()
  in
  (* A segment DM emitted into a pool slot must outlive this event (the
     channel delivers it later): recognise the slot and transfer a
     reference to the channel. The guard path copies into its protected
     buffer anyway, so no loan is needed there. *)
  let tx ch s =
    if guard then Sim.Channel.send ch (guard_protect s)
    else
      match pool with
      | None -> Sim.Channel.send ch s
      | Some p -> (
          match Bitkit.Pool.slot_of_slice p s with
          | None -> Sim.Channel.send ch s
          | Some slot ->
              Bitkit.Pool.retain p slot;
              Sim.Channel.send ~loan:(p, slot) ch s)
  in
  (* The pair owns the two registries, so it registers them as sampling
     sources (one per side, prefixed by the host name). *)
  (match telemetry with
  | Some tele ->
      let reg_source name = function
        | Some reg -> Sublayer.Stats.telemetry_source tele ~name reg
        | None -> ()
      in
      reg_source "A" stats_a;
      reg_source "B" stats_b
  | None -> ());
  Link.set_transmit link_a (tx ab);
  Link.set_transmit link_b (tx ba);
  (* One shared tracer: the cross-host span correlation (RD's flight
     spans closed by the receiving end) needs both hosts on it. *)
  let ins side =
    I.v ?stats:side ?tracer ?monitors ?telemetry ?pool ~level ()
  in
  let a =
    create engine ~config ~factory:factory_a ~ins:(ins stats_a) ~name:"A"
      ~link:link_a ()
  in
  let b =
    create engine ~config ~factory:factory_b ~ins:(ins stats_b) ~name:"B"
      ~link:link_b ()
  in
  (a, b, ab, ba)

let pair engine ?config ?factory_a ?factory_b ?guard ?stats_a ?stats_b ?tracer
    ?monitors ?telemetry ?pool ?level channel_config =
  let a, b, _, _ =
    pair_channels engine ?config ?factory_a ?factory_b ?guard ?stats_a ?stats_b
      ?tracer ?monitors ?telemetry ?pool ?level channel_config
  in
  (a, b)
