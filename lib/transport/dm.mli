(** The demultiplexing sublayer — "essentially UDP" (paper §3). One
    instance handles one connection's port stamping and filtering; the
    port {e table} (binding, reuse, listen dispatch) lives in {!Host},
    which routes wire segments to per-connection stacks using
    {!Segment.peek_ports} only — DM's bits are all it ever reads. *)

type conn = { local_port : int; remote_port : int }

include
  Sublayer.Machine.S
    with type up_req = Bitkit.Wirebuf.t
     and type up_ind = Bitkit.Slice.t
     and type down_req = Bitkit.Slice.t
     and type down_ind = Bitkit.Slice.t
     and type timer = Sublayer.Machine.Nothing.t

val make :
  ?stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  ?pool:Bitkit.Pool.t ->
  local_port:int ->
  remote_port:int ->
  unit ->
  t
(** Counters (when [stats] is given): [segments_out], [segments_in],
    [rejected]. When [span] is given, instant [segment_out]/[segment_in]
    markers record the T2 crossings.

    When [pool] is given, outgoing segments are emitted into loaned
    arena slots instead of fresh heap strings; the loan is
    deferred-released at end of event, and a pool-aware transmit closure
    (see {!Host.pair_channels}, {!Fabric.create}) extends its lifetime
    to channel delivery by retaining the slot it recognises via
    {!Bitkit.Pool.slot_of_slice}. *)

val conn : t -> conn
