(** The demultiplexing sublayer — "essentially UDP" (paper §3). One
    instance handles one connection's port stamping and filtering; the
    port {e table} (binding, reuse, listen dispatch) lives in {!Host},
    which routes wire segments to per-connection stacks using
    {!Segment.peek_ports} only — DM's bits are all it ever reads. *)

type conn = { local_port : int; remote_port : int }

include
  Sublayer.Machine.S
    with type up_req = Bitkit.Wirebuf.t
     and type up_ind = Bitkit.Slice.t
     and type down_req = Bitkit.Slice.t
     and type down_ind = Bitkit.Slice.t
     and type timer = Sublayer.Machine.Nothing.t

val make :
  ?stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  local_port:int ->
  remote_port:int ->
  unit ->
  t
(** Counters (when [stats] is given): [segments_out], [segments_in],
    [rejected]. When [span] is given, instant [segment_out]/[segment_in]
    markers record the T2 crossings. *)

val conn : t -> conn
