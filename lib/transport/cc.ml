type loss = Timeout | Dup_ack

type instance = {
  name : string;
  window : unit -> float;
  on_ack : bytes:int -> rtt:float option -> unit;
  on_loss : loss -> unit;
  on_ecn : unit -> unit;
}

type algo = { algo_name : string; create : mss:int -> now:(unit -> float) -> instance }

let reno =
  {
    algo_name = "reno";
    create =
      (fun ~mss ~now:_ ->
        let fmss = Float.of_int mss in
        let cwnd = ref (10. *. fmss) in
        let ssthresh = ref infinity in
        let halve () =
          ssthresh := Float.max (2. *. fmss) (!cwnd /. 2.);
          cwnd := !ssthresh
        in
        {
          name = "reno";
          window = (fun () -> !cwnd);
          on_ack =
            (fun ~bytes ~rtt:_ ->
              if !cwnd < !ssthresh then cwnd := !cwnd +. Float.of_int bytes
              else cwnd := !cwnd +. (fmss *. fmss /. !cwnd));
          on_loss =
            (function
            | Dup_ack -> halve ()
            | Timeout ->
                ssthresh := Float.max (2. *. fmss) (!cwnd /. 2.);
                cwnd := fmss);
          on_ecn = halve;
        });
  }

let cubic =
  {
    algo_name = "cubic";
    create =
      (fun ~mss ~now ->
        let fmss = Float.of_int mss in
        let c = 0.4 and beta = 0.7 in
        let cwnd = ref (10. *. fmss) in
        let w_max = ref !cwnd in
        let epoch = ref None in
        let ssthresh = ref infinity in
        let cubic_window () =
          match !epoch with
          | None -> !cwnd
          | Some t0 ->
              let t = now () -. t0 in
              let k = Float.cbrt (!w_max *. (1. -. beta) /. (c *. fmss)) in
              let wt = (c *. fmss *. ((t -. k) ** 3.)) +. !w_max in
              Float.max (2. *. fmss) wt
        in
        let on_loss_common () =
          w_max := !cwnd;
          cwnd := Float.max (2. *. fmss) (!cwnd *. beta);
          ssthresh := !cwnd;
          epoch := None
        in
        {
          name = "cubic";
          window = (fun () -> !cwnd);
          on_ack =
            (fun ~bytes ~rtt:_ ->
              if !cwnd < !ssthresh then cwnd := !cwnd +. Float.of_int bytes
              else begin
                if !epoch = None then epoch := Some (now ());
                let target = cubic_window () in
                if target > !cwnd then
                  (* Approach the cubic target over roughly one RTT of acks. *)
                  cwnd := !cwnd +. ((target -. !cwnd) *. Float.of_int bytes /. !cwnd)
                else cwnd := !cwnd +. (0.01 *. fmss *. Float.of_int bytes /. !cwnd)
              end);
          on_loss =
            (function
            | Dup_ack -> on_loss_common ()
            | Timeout ->
                on_loss_common ();
                cwnd := fmss);
          on_ecn = on_loss_common;
        });
  }

let vegas =
  {
    algo_name = "vegas";
    create =
      (fun ~mss ~now:_ ->
        let fmss = Float.of_int mss in
        let cwnd = ref (4. *. fmss) in
        let base_rtt = ref infinity in
        let alpha = 2. and beta = 4. in
        {
          name = "vegas";
          window = (fun () -> !cwnd);
          on_ack =
            (fun ~bytes:_ ~rtt ->
              match rtt with
              | None -> ()
              | Some sample ->
                  if sample < !base_rtt then base_rtt := sample;
                  if Float.is_finite !base_rtt && sample > 0. then begin
                    (* diff = (expected - actual) * base_rtt, in segments *)
                    let expected = !cwnd /. !base_rtt in
                    let actual = !cwnd /. sample in
                    let diff = (expected -. actual) *. !base_rtt /. fmss in
                    if diff < alpha then cwnd := !cwnd +. (fmss *. fmss /. !cwnd)
                    else if diff > beta then
                      cwnd := Float.max (2. *. fmss) (!cwnd -. (fmss *. fmss /. !cwnd))
                  end);
          on_loss =
            (function
            | Dup_ack -> cwnd := Float.max (2. *. fmss) (!cwnd *. 0.75)
            | Timeout -> cwnd := 2. *. fmss);
          on_ecn = (fun () -> cwnd := Float.max (2. *. fmss) (!cwnd *. 0.75));
        });
  }

let fixed n =
  {
    algo_name = Printf.sprintf "fixed-%d" n;
    create =
      (fun ~mss ~now:_ ->
        let w = Float.of_int (n * mss) in
        {
          name = Printf.sprintf "fixed-%d" n;
          window = (fun () -> w);
          on_ack = (fun ~bytes:_ ~rtt:_ -> ());
          on_loss = (fun _ -> ());
          on_ecn = (fun () -> ());
        });
  }

let aimd ~alpha ~beta =
  {
    algo_name = Printf.sprintf "aimd-%.1f-%.2f" alpha beta;
    create =
      (fun ~mss ~now:_ ->
        let fmss = Float.of_int mss in
        let cwnd = ref (2. *. fmss) in
        {
          name = "aimd";
          window = (fun () -> !cwnd);
          on_ack =
            (fun ~bytes ~rtt:_ -> cwnd := !cwnd +. (alpha *. fmss *. Float.of_int bytes /. !cwnd));
          on_loss = (fun _ -> cwnd := Float.max fmss (!cwnd *. beta));
          on_ecn = (fun () -> cwnd := Float.max fmss (!cwnd *. beta));
        });
  }

let all = [ reno; cubic; vegas; fixed 8; aimd ~alpha:1.0 ~beta:0.5 ]

(* Wrap an instance's callbacks so any algorithm is observable without
   touching its implementation: signal counters plus a cwnd gauge sampled
   after every event that can move the window. *)
let instrument sc inst =
  let open Sublayer.Stats in
  let acks = counter sc "acks" in
  let losses = counter sc "losses" in
  let ecn_marks = counter sc "ecn_marks" in
  let cwnd = gauge sc "cwnd_bytes" in
  let update () = set cwnd (int_of_float (inst.window ())) in
  update ();
  {
    inst with
    on_ack =
      (fun ~bytes ~rtt ->
        incr acks;
        inst.on_ack ~bytes ~rtt;
        update ());
    on_loss =
      (fun kind ->
        incr losses;
        inst.on_loss kind;
        update ());
    on_ecn =
      (fun () ->
        incr ecn_marks;
        inst.on_ecn ();
        update ());
  }
