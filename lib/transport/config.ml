type isn_choice = Clock | Hashed of int | Counter of int

type t = {
  mss : int;
  rcv_buf : int;
  rto_init : float;
  rto_min : float;
  rto_max : float;
  syn_rto : float;
  syn_retries : int;
  fin_retries : int;
  msl : float;
  max_retries : int;
  give_up_after : float;
  dupack_threshold : int;
  use_sack : bool;
  nagle : bool;
  delayed_ack : bool;
  ack_delay : float;
  cc : Cc.algo;
  isn : isn_choice;
}

let default =
  {
    mss = 1000;
    rcv_buf = 64 * 1024;
    rto_init = 0.2;
    rto_min = 0.05;
    rto_max = 5.0;
    syn_rto = 0.2;
    syn_retries = 8;
    fin_retries = 8;
    msl = 2.0;
    max_retries = 12;
    give_up_after = 60.0;
    dupack_threshold = 3;
    use_sack = true;
    nagle = false;
    delayed_ack = false;
    ack_delay = 0.04;
    cc = Cc.reno;
    isn = Hashed 0x5eed;
  }

let make_isn t engine =
  match t.isn with
  | Clock -> Isn.clock engine
  | Hashed secret -> Isn.hashed engine ~secret
  | Counter start -> Isn.counter ~start ()
