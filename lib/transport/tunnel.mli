(** An established transport connection presented as a
    {!Sublayer.Link} — the adapter that makes sublayering recursive
    (the paper's §5 / Ouroboros direction).

    The tunnel frames whole wire segments into the outer connection's
    byte stream (4-byte big-endian length prefix per record) and parses
    them back out on delivery, so an inner {!Host} — a complete
    sublayered-TCP stack with its own congestion control, ARQ, monitors
    and spans — runs {e over} an outer connection exactly as it runs
    over a [Sim.Channel].  Works over any factory, including
    [Tcp_secure] ([Rec]-sealed records: an encrypted VPN carrying inner
    connections).

    Death propagates: when the outer connection aborts, resets or
    closes, the link dies and every inner stack riding it is halted by
    its host (inner ARQ/RD must give up, not retransmit into a dead
    tunnel).  Closing the link closes the outer connection instead
    (orderly FIN). *)

type t

val create : ?id:string -> ?mtu:int -> ?cost:float -> Host.conn -> t
(** Wrap [conn].  [mtu], when given, is advertised as the link's MTU
    hint so the inner host caps its MSS to what fits one record
    comfortably.  [cost] defaults to 1.  The tunnel takes over the
    connection's [on_data]/[on_event] callbacks and drains its receive
    buffer; don't share [conn] with another consumer. *)

val link : t -> Bitkit.Slice.t Sublayer.Link.t
(** The link to hand to an inner {!Host.create}. *)

val outer : t -> Host.conn

val frames_in : t -> int
(** Complete records parsed out of the outer stream so far. *)

val frames_out : t -> int
