open Sublayer.Machine

let name = "rd"

type stats = {
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable timeouts : int;
  mutable acks_only : int;
  mutable dup_segments : int;
}

type counters = {
  c_segments_sent : Sublayer.Stats.counter;
  c_retransmits : Sublayer.Stats.counter;
  c_fast_retransmits : Sublayer.Stats.counter;
  c_timeouts : Sublayer.Stats.counter;
  c_acks_only : Sublayer.Stats.counter;
  c_dup_segments : Sublayer.Stats.counter;
}

let counters_in sc =
  {
    c_segments_sent = Sublayer.Stats.counter sc "segments_sent";
    c_retransmits = Sublayer.Stats.counter sc "retransmits";
    c_fast_retransmits = Sublayer.Stats.counter sc "fast_retransmits";
    c_timeouts = Sublayer.Stats.counter sc "timeouts";
    c_acks_only = Sublayer.Stats.counter sc "acks_only";
    c_dup_segments = Sublayer.Stats.counter sc "dup_segments";
  }

type sent = {
  s_off : int;
  s_len : int;
  s_pdu : Bitkit.Wirebuf.t;  (* OSR's wirebuf; RD pushes its header per (re)send *)
  s_sent_at : float;
  s_retx : bool;
  s_sacked : bool;
}

type conn = {
  isn_local : int;
  isn_remote : int;
  (* sender *)
  sndq : sent list;  (* ascending offset *)
  snd_acked : int;
  snd_max : int;     (* high-water mark of submitted stream bytes *)
  dup_acks : int;
  recover : int;     (* no second fast retransmit until acked past this *)
  srtt : float option;
  rttvar : float;
  rto : float;
  backoffs : int;        (* consecutive RTO firings without cumulative progress *)
  last_progress : float; (* when the cumulative ack last advanced (or data was queued) *)
  block : string;    (* OSR's current header block, opaque *)
  (* receiver *)
  rcv : Ranges.t;
  ack_pending : bool;  (* a delayed ack is owed *)
}

type t = {
  cfg : Config.t;
  now : unit -> float;
  ctrs : counters;
  sp : Sublayer.Span.ctx;
  conn : conn option;
}

type up_req = Iface.rd_req
type up_ind = Iface.rd_ind
type down_req = Iface.cm_req
type down_ind = Iface.cm_ind
type timer = Rto | Ack_delay

let initial ?stats ?span cfg ~now =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "rd"
  in
  let sp =
    match span with Some sp -> sp | None -> Sublayer.Span.disabled name
  in
  { cfg; now; ctrs = counters_in sc; sp; conn = None }

(* The flight span of a segment is correlated across hosts by a key both
   ends can compute: the connection's ISN pair (swapped on the receiver)
   plus the stream offset. No wire format changes. *)
let xh_key ~isn_local ~isn_remote offset =
  Printf.sprintf "xh:%d:%d:%d" isn_local isn_remote offset

let fkey offset = "f:" ^ string_of_int offset

(* Fresh snapshot of the counters in the legacy record shape. *)
let stats t =
  let v c = Sublayer.Stats.value c in
  { segments_sent = v t.ctrs.c_segments_sent;
    retransmits = v t.ctrs.c_retransmits;
    fast_retransmits = v t.ctrs.c_fast_retransmits;
    timeouts = v t.ctrs.c_timeouts;
    acks_only = v t.ctrs.c_acks_only;
    dup_segments = v t.ctrs.c_dup_segments }

let outstanding t =
  match t.conn with None -> 0 | Some c -> c.snd_max - c.snd_acked

let srtt t = match t.conn with None -> None | Some c -> c.srtt
let rto t = match t.conn with None -> t.cfg.Config.rto_init | Some c -> c.rto

(* Absolute sequence of a stream offset (SYN consumes one number). *)
let abs_seq isn offset = (isn + 1 + offset) land 0xFFFFFFFF

let rcv_sacks t c =
  if not t.cfg.Config.use_sack then []
  else begin
    let cum = Ranges.cumulative c.rcv in
    Ranges.beyond c.rcv cum
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun (a, b) ->
           { Segment.sack_start = abs_seq c.isn_remote a;
             sack_end = abs_seq c.isn_remote b })
  end

(* Every outgoing segment carries our cumulative ack and SACK view. *)
let data_segment t c sent =
  { Segment.seq = abs_seq c.isn_local sent.s_off;
    ack = abs_seq c.isn_remote (Ranges.cumulative c.rcv);
    len = sent.s_len;
    has_data = true;
    has_ack = true;
    sacks = rcv_sacks t c }

let pure_ack t c =
  { Segment.seq = 0;
    ack = abs_seq c.isn_remote (Ranges.cumulative c.rcv);
    len = 0;
    has_data = false;
    has_ack = true;
    sacks = rcv_sacks t c }

(* [push] is persistent, so stamping a fresh RD header on the stored OSR
   wirebuf at every (re)transmit costs one cons and never touches the
   payload; the header is recomputed so retransmits carry the current
   cumulative ack and SACK view. *)
let send_data t c sent =
  Sublayer.Stats.incr t.ctrs.c_segments_sent;
  Down
    (`Pdu
      (Bitkit.Wirebuf.push sent.s_pdu ~owner:"rd"
         (Segment.write_rd (data_segment t c sent))))

let send_ack t c =
  Sublayer.Stats.incr t.ctrs.c_acks_only;
  Down
    (`Pdu
      (Bitkit.Wirebuf.push
         (Bitkit.Wirebuf.of_string c.block)
         ~owner:"rd"
         (Segment.write_rd (pure_ack t c))))

let update_rtt c sample cfg =
  let srtt, rttvar =
    match c.srtt with
    | None -> (sample, sample /. 2.)
    | Some srtt ->
        let err = sample -. srtt in
        let srtt = srtt +. (0.125 *. err) in
        let rttvar = c.rttvar +. (0.25 *. (Float.abs err -. c.rttvar)) in
        (srtt, rttvar)
  in
  let rto =
    Float.min cfg.Config.rto_max
      (Float.max cfg.Config.rto_min (srtt +. (4. *. rttvar)))
  in
  { c with srtt = Some srtt; rttvar; rto }

(* ETIMEDOUT semantics: no cumulative progress for [give_up_after]
   seconds, or [max_retries] consecutive backoffs, aborts the
   connection. The RTO delay is clamped to the deadline so the abort
   lands within [give_up_after] rather than one backed-off RTO late. *)
let deadline t c = c.last_progress +. t.cfg.Config.give_up_after

let arm_rto t c =
  Set_timer (Rto, Float.min c.rto (Float.max 0.001 (deadline t c -. t.now ())))

let give_up t c =
  c.backoffs >= t.cfg.Config.max_retries || t.now () >= deadline t c

let with_conn t f =
  match t.conn with
  | None -> (t, [ Note "no connection" ])
  | Some c -> f c

let handle_up_req t (req : up_req) =
  match req with
  | `Connect -> (t, [ Down `Connect ])
  | `Listen -> (t, [ Down `Listen ])
  | `Close -> (t, [ Down `Close ])
  | `Set_block block ->
      (match t.conn with
      | None -> (t, [])
      | Some c -> ({ t with conn = Some { c with block } }, []))
  | `Announce_block block ->
      (match t.conn with
      | None -> (t, [])
      | Some c ->
          let c = { c with block } in
          ({ t with conn = Some c }, [ send_ack t c ]))
  | `Transmit (offset, len, osr_pdu) ->
      with_conn t (fun c ->
          let sent =
            { s_off = offset; s_len = len; s_pdu = osr_pdu; s_sent_at = t.now ();
              s_retx = false; s_sacked = false }
          in
          if Sublayer.Span.active t.sp then begin
            (* OSR handed us this offset's trace under the local key;
               the flight span runs until the peer RD delivers it. *)
            let trace =
              Sublayer.Span.take_local t.sp ("off:" ^ string_of_int offset)
            in
            Sublayer.Span.open_ t.sp ~key:(fkey offset) ~trace "flight";
            Sublayer.Span.bind t.sp
              (xh_key ~isn_local:c.isn_local ~isn_remote:c.isn_remote offset)
              (Sublayer.Span.id_of t.sp ~key:(fkey offset))
          end;
          let act = send_data t c sent in
          let was_idle = c.sndq = [] in
          let c =
            { c with sndq = c.sndq @ [ sent ];
              snd_max = max c.snd_max (offset + len);
              (* an idle sender's give-up clock starts when data is
                 queued, not at establishment — else the first write
                 after a long quiet period aborts spuriously *)
              last_progress = (if was_idle then t.now () else c.last_progress);
              backoffs = (if was_idle then 0 else c.backoffs);
              (* the data segment piggybacks our cumulative ack *)
              ack_pending = false }
          in
          let acts = if was_idle then [ act; arm_rto t c ] else [ act ] in
          let acts = if t.cfg.Config.delayed_ack then Cancel_timer Ack_delay :: acts else acts in
          ({ t with conn = Some c }, acts))

(* --- Receiver side: an arriving data segment. --- *)
let handle_data t c (rd : Segment.rd) osr_pdu =
  let rcv_cum = Ranges.cumulative c.rcv in
  let seq_abs =
    Sublayer.Seqspace.reconstruct Iface.seq32 ~reference:(abs_seq c.isn_remote rcv_cum)
      rd.Segment.seq
  in
  let offset = seq_abs - c.isn_remote - 1 in
  (* RD cannot know the upper sublayer's header size (T3), so the only
     sanity check available is that the claimed extent fits in the PDU. *)
  if offset < 0 || rd.Segment.len > Bitkit.Slice.length osr_pdu then
    (c, [ Note "implausible data segment dropped" ])
  else begin
    let before = Ranges.cumulative c.rcv in
    let rcv, fresh = Ranges.add c.rcv offset (offset + rd.Segment.len) in
    let c = { c with rcv } in
    let advanced = Ranges.cumulative rcv > before in
    if fresh then begin
      if Sublayer.Span.active t.sp then begin
        (* Close the sender's flight span here, at delivery — the span
           measures network sojourn, not ack round-trip — and bind the
           trace locally for OSR's reassembly span. *)
        let id =
          Sublayer.Span.take t.sp
            (xh_key ~isn_local:c.isn_remote ~isn_remote:c.isn_local offset)
        in
        let trace = Sublayer.Span.close_id t.sp ~id ~detail:"delivered" () in
        if trace <> 0 then
          Sublayer.Span.bind_local t.sp ("off:" ^ string_of_int offset) trace
      end;
      (* Delayed acks apply only to in-order data; gaps must be acked
         immediately (they are the sender's dupack signal), and at most
         one ack may be owed at a time (ack every second segment). *)
      if t.cfg.Config.delayed_ack && advanced && not c.ack_pending then
        ( { c with ack_pending = true },
          [ Up (`Segment (offset, osr_pdu));
            Set_timer (Ack_delay, t.cfg.Config.ack_delay) ] )
      else
        ( { c with ack_pending = false },
          [ Up (`Segment (offset, osr_pdu)); send_ack t c; Cancel_timer Ack_delay ] )
    end
    else begin
      Sublayer.Stats.incr t.ctrs.c_dup_segments;
      ({ c with ack_pending = false }, [ send_ack t c; Cancel_timer Ack_delay ])
    end
  end

(* --- Sender side: the ack field of an arriving segment. --- *)
let handle_ack t c (rd : Segment.rd) osr_pdu =
  let acked_off =
    Sublayer.Seqspace.reconstruct Iface.seq32
      ~reference:(abs_seq c.isn_local c.snd_acked) rd.Segment.ack
    - c.isn_local - 1
  in
  (* SACK processing: mark covered segments. *)
  let c =
    if rd.Segment.sacks = [] then c
    else begin
      let sacked s =
        s.s_sacked
        || List.exists
             (fun b ->
               let lo =
                 Sublayer.Seqspace.reconstruct Iface.seq32
                   ~reference:(abs_seq c.isn_local s.s_off) b.Segment.sack_start
                 - c.isn_local - 1
               in
               let hi = lo + ((b.Segment.sack_end - b.Segment.sack_start) land 0xFFFFFFFF) in
               lo <= s.s_off && s.s_off + s.s_len <= hi)
             rd.Segment.sacks
      in
      { c with sndq = List.map (fun s -> { s with s_sacked = sacked s }) c.sndq }
    end
  in
  if acked_off > c.snd_acked && acked_off <= c.snd_max then begin
    (* New data acknowledged. *)
    let newly, remaining =
      List.partition (fun s -> s.s_off + s.s_len <= acked_off) c.sndq
    in
    if Sublayer.Span.active t.sp then
      List.iter
        (fun s ->
          (* Usually a no-op forget: the receiver already closed the span
             at delivery. It only finishes here (duration = full RTT)
             when the two ends do not share a tracer. *)
          Sublayer.Span.close t.sp ~key:(fkey s.s_off) ~detail:"acked" ();
          Sublayer.Span.unbind t.sp
            (xh_key ~isn_local:c.isn_local ~isn_remote:c.isn_remote s.s_off))
        newly;
    let rtt_sample =
      List.fold_left
        (fun acc s -> if s.s_retx then acc else Some (t.now () -. s.s_sent_at))
        None newly
    in
    let c =
      match rtt_sample with
      | Some s -> update_rtt c s t.cfg
      | None ->
          (* Karn's rule gives no sample from retransmitted segments, but
             a cumulative advance still clears exponential backoff —
             otherwise serial loss recovery crawls at rto_max. *)
          let base =
            match c.srtt with
            | Some srtt -> srtt +. (4. *. c.rttvar)
            | None -> t.cfg.Config.rto_init
          in
          { c with rto = Float.min t.cfg.Config.rto_max (Float.max t.cfg.Config.rto_min base) }
    in
    let c =
      { c with sndq = remaining; snd_acked = acked_off; dup_acks = 0;
        backoffs = 0; last_progress = t.now () }
    in
    let timer_act = if remaining = [] then Cancel_timer Rto else arm_rto t c in
    (* The timer action must precede the [`Acked] indication: delivering
       it makes OSR release new segments synchronously, and those arm the
       RTO — a stale Cancel_timer sequenced afterwards would silently
       disarm it and deadlock the transfer. *)
    (c, [ timer_act; Up (`Acked (acked_off, osr_pdu, rtt_sample)) ])
  end
  else if acked_off = c.snd_acked && c.sndq <> [] then begin
    (* Duplicate ack. Once the threshold is reached we enter SACK-style
       recovery: each further dupack may refetch the next hole (earliest
       unsacked segment not already retransmitted this window), so
       multiple losses in one window do not each cost an RTO. The
       congestion controller is told once per window. *)
    let c = { c with dup_acks = c.dup_acks + 1 } in
    if c.dup_acks >= t.cfg.Config.dupack_threshold then begin
      match List.find_opt (fun s -> not (s.s_sacked || s.s_retx)) c.sndq with
      | None -> (c, [])
      | Some victim ->
          Sublayer.Stats.incr t.ctrs.c_retransmits;
          Sublayer.Stats.incr t.ctrs.c_fast_retransmits;
          Sublayer.Span.child t.sp ~key:(fkey victim.s_off) ~detail:"fast" "retx";
          let resend = { victim with s_retx = true; s_sent_at = t.now () } in
          let sndq =
            List.map (fun s -> if s.s_off = victim.s_off then resend else s) c.sndq
          in
          let fresh_window = c.snd_acked >= c.recover in
          let c = { c with sndq; recover = (if fresh_window then c.snd_max else c.recover) } in
          let loss_acts = if fresh_window then [ Up (`Loss Cc.Dup_ack) ] else [] in
          ( c,
            Note (Printf.sprintf "fast retransmit offset=%d" victim.s_off)
            :: (send_data t c resend :: loss_acts)
            @ [ arm_rto t c ] )
    end
    else (c, [])
  end
  else
    (* No progress and not a countable dupack — but the segment still
       carries the peer's current OSR block: pass it up so pure window
       updates reopen a zero-window-stalled sender. *)
    (c, [ Up (`Acked (c.snd_acked, osr_pdu, None)) ])

let handle_down_ind t (ind : down_ind) =
  match ind with
  | `Established (isn_local, isn_remote) -> (
      match t.conn with
      | None ->
          let conn =
            { isn_local; isn_remote; sndq = []; snd_acked = 0; snd_max = 0;
              dup_acks = 0; recover = 0; srtt = None; rttvar = 0.;
              rto = t.cfg.Config.rto_init;
              backoffs = 0; last_progress = t.now ();
              block = Segment.encode_osr Segment.default_osr ~payload:"";
              rcv = Ranges.empty; ack_pending = false }
          in
          ({ t with conn = Some conn }, [ Up `Established ])
      | Some c when Ranges.is_empty c.rcv ->
          (* Timer-based CM learns the peer's ISN only from its first
             segment and re-announces the pair; adopt it without
             disturbing sender state (safe while nothing was received). *)
          ({ t with conn = Some { c with isn_local; isn_remote } }, [])
      | Some _ -> (t, [ Note "late establishment ignored" ]))
  | `Peer_fin -> (t, [ Up `Peer_fin ])
  | `Closed ->
      (* CM is done with this connection: stop our timers so the engine
         can quiesce, but keep the record for stats/srtt readers. *)
      (t, [ Cancel_timer Rto; Cancel_timer Ack_delay; Up `Closed ])
  | `Reset ->
      (* The peer refused or tore down the connection; retransmitting
         into it would livelock, so drop all state and timers. *)
      Sublayer.Span.close_all t.sp ~detail:"reset" ();
      ({ t with conn = None }, [ Cancel_timer Rto; Cancel_timer Ack_delay; Up `Reset ])
  | `Pdu pdu ->
      with_conn t (fun c ->
          match Segment.decode_rd_slice pdu with
          | None -> (t, [ Note "undecodable rd pdu dropped" ])
          | Some (rd, osr_pdu) ->
              let c, acts1 =
                if rd.Segment.has_data then handle_data t c rd osr_pdu else (c, [])
              in
              let c, acts2 =
                if rd.Segment.has_ack then handle_ack t c rd osr_pdu else (c, [])
              in
              ({ t with conn = Some c }, acts1 @ acts2))

let handle_timer t tm =
  match tm with
  | Ack_delay ->
      with_conn t (fun c ->
          if c.ack_pending then
            ({ t with conn = Some { c with ack_pending = false } }, [ send_ack t c ])
          else (t, []))
  | Rto ->
  with_conn t (fun c ->
      if c.sndq <> [] && give_up t c then begin
        (* Retransmission exhausted: the path is (as far as RD can tell)
           a blackhole. Abort upward with ETIMEDOUT semantics and tell
           CM to tear the connection down — all within this sublayer's
           own vocabulary; no layer violation needed (T3). *)
        Sublayer.Span.close_all t.sp ~detail:"aborted" ();
        ( { t with conn = None },
          [ Note
              (Printf.sprintf "giving up after %d backoffs, %.1fs stalled"
                 c.backoffs (t.now () -. c.last_progress));
            Cancel_timer Ack_delay; Up `Aborted; Down `Abort ] )
      end
      else
      match List.find_opt (fun s -> not s.s_sacked) c.sndq with
      | None -> (
          match c.sndq with
          | [] -> (t, [])
          | all_sacked :: _ ->
              (* Everything outstanding is sacked but not cumulatively
                 acked: resend the oldest anyway. *)
              Sublayer.Stats.incr t.ctrs.c_retransmits;
              Sublayer.Stats.incr t.ctrs.c_timeouts;
              Sublayer.Span.child t.sp ~key:(fkey all_sacked.s_off) ~detail:"rto" "retx";
              let resend = { all_sacked with s_retx = true; s_sent_at = t.now () } in
              let sndq =
                List.map (fun s -> if s.s_off = resend.s_off then resend else s) c.sndq
              in
              let c =
                { c with sndq; backoffs = c.backoffs + 1;
                  rto = Float.min (2. *. c.rto) t.cfg.Config.rto_max }
              in
              ({ t with conn = Some c }, [ send_data t c resend; Up (`Loss Cc.Timeout); arm_rto t c ]))
      | Some victim ->
          Sublayer.Stats.incr t.ctrs.c_retransmits;
          Sublayer.Stats.incr t.ctrs.c_timeouts;
          Sublayer.Span.child t.sp ~key:(fkey victim.s_off) ~detail:"rto" "retx";
          let resend = { victim with s_retx = true; s_sent_at = t.now () } in
          let sndq =
            List.map (fun s -> if s.s_off = victim.s_off then resend else s) c.sndq
          in
          let c =
            { c with sndq; backoffs = c.backoffs + 1;
              rto = Float.min (2. *. c.rto) t.cfg.Config.rto_max }
          in
          ( { t with conn = Some c },
            [ Note (Printf.sprintf "rto retransmit offset=%d rto=%.2f" victim.s_off c.rto);
              send_data t c resend; Up (`Loss Cc.Timeout); arm_rto t c ] ))
