(** The sublayered TCP endpoint: {!Osr} / {!Rd} / {!Cm} / {!Dm} composed
    with {!Sublayer.Machine.Stack} (Figure 5). One value of {!t} is one
    end of one connection; multi-connection port demultiplexing lives in
    {!Host}. *)

type t

val create :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?ins:Sublayer.Instrument.t ->
  name:string ->
  Config.t ->
  local_port:int ->
  remote_port:int ->
  transmit:(Bitkit.Slice.t -> unit) ->
  events:(Iface.app_ind -> unit) ->
  t
(** [transmit] sends a wire segment; [events] receives application-level
    indications ([`Established], [`Data], ...). [ins] bundles the
    instruments ({!Sublayer.Instrument}). With [ins.stats], each
    sublayer registers its counters under its own (level-namespaced)
    scope: [osr.*], [rd.*], [cm.*], [dm.*] plus [cc.*] for the
    congestion controller. With [ins.tracer], every sublayer opens
    causal spans on it (track = [name]), with per-sublayer sojourn
    histograms recorded into [ins.stats] as well. With [ins.monitors],
    conformance probes on the OSR⇄RD, RD⇄CM and CM⇄DM interfaces check
    every crossing against the {!Monitor.Specs} contracts under the key
    [name]. With [ins.telemetry] (and [ins.stats]), {!Sublayer.Alloc}
    cells are installed at every T2 seam so enabling allocation
    attribution charges [<sub>.gc.minor_words] per sublayer (plus
    [app.*]/[wire.*] for the excursions outside the stack). With
    [ins.pool], OSR stages out-of-order segments in arena slots and DM
    emits outgoing segments into them (see {!Osr.initial}, {!Dm.make}). *)

val connect : t -> unit
val listen : t -> unit
val write : t -> string -> unit

val read : t -> int -> unit
(** Tell OSR the application consumed [n] delivered bytes (flow-control
    credit; {!Host} calls this automatically unless auto-read is off). *)

val close : t -> unit
val from_wire : t -> Bitkit.Slice.t -> unit

val halt : t -> unit
(** Make the whole stack inert (see {!Sublayer.Runtime.Make.halt}) —
    the link below it died. *)

(** Inspection (used by tests and benches). *)

val cm_phase : t -> string
val rd_stats : t -> Rd.stats
val osr_stats : t -> Osr.stats
val cwnd : t -> float
val peer_window_of : t -> int
val srtt : t -> float option
val outstanding : t -> int
val unsent_bytes : t -> int
val stream_finished : t -> bool
val cc_name : t -> string
