(** The sublayered TCP with Watson timer-based connection management:
    [Osr / Rd / Cm_timer / Dm] — the same stack as {!Tcp_sublayered} with
    only the CM module swapped (experiment E10, whole-sublayer case). *)

type t

val create :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?ins:Sublayer.Instrument.t ->
  ?idle_timeout:float ->
  name:string ->
  Config.t ->
  local_port:int ->
  remote_port:int ->
  transmit:(Bitkit.Slice.t -> unit) ->
  events:(Iface.app_ind -> unit) ->
  t
(** [idle_timeout] defaults to 6 s of virtual time (above the maximum RTO, so loss recovery is never mistaken for a dead peer). *)

val connect : t -> unit
val listen : t -> unit
val write : t -> string -> unit

val read : t -> int -> unit
(** Tell OSR the application consumed [n] delivered bytes (flow-control
    credit; {!Host} calls this automatically unless auto-read is off). *)

val close : t -> unit
val from_wire : t -> Bitkit.Slice.t -> unit

val halt : t -> unit
(** Make the whole stack inert (link death below). *)

val cm_phase : t -> string
val stream_finished : t -> bool

val factory : ?idle_timeout:float -> unit -> Host.factory
