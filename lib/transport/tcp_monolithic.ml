(* A deliberately lwIP-shaped implementation: one PCB, one big input
   function, shared mutable state throughout. See the .mli for why. *)

type state =
  | CLOSED
  | LISTEN
  | SYN_SENT
  | SYN_RCVD
  | ESTABLISHED
  | FIN_WAIT_1
  | FIN_WAIT_2
  | CLOSING
  | TIME_WAIT
  | CLOSE_WAIT
  | LAST_ACK

type unacked = {
  u_seq : int;  (* absolute, unbounded *)
  u_len : int;  (* sequence-space length (payload, +1 if FIN/SYN) *)
  u_payload : string;
  u_flags : Wire.flags;
  mutable u_sent_at : float;
  mutable u_retx : bool;
}

type t = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t option;
  name : string;
  cfg : Config.t;
  isn_gen : Isn.t;
  transmit : string -> unit;
  events : Iface.app_ind -> unit;
  cc : Cc.instance;
  (* --- the PCB: every function below reads and writes these fields --- *)
  mutable state : state;
  mutable local_port : int;
  mutable remote_port : int;
  mutable iss : int;
  mutable irs : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  mutable rcv_nxt : int;
  mutable rcv_wnd : int;
  mutable unsent : string list;  (* reversed chunks *)
  mutable unsent_bytes : int;
  mutable unacked : unacked list;  (* ascending seq *)
  mutable reasm : (int * string) list;  (* absolute seq, ascending *)
  mutable dupacks : int;
  mutable recover : int;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  mutable rto_timer : Sim.Engine.handle option;
  mutable misc_timer : Sim.Engine.handle option;  (* handshake / time-wait *)
  mutable persist_timer : Sim.Engine.handle option;
  mutable unread : int;  (* delivered, not yet consumed by the app *)
  mutable hs_retries : int;
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable established_signalled : bool;
  mutable segments_sent : int;
  mutable retransmissions : int;
}

let state_name t =
  match t.state with
  | CLOSED -> "CLOSED" | LISTEN -> "LISTEN" | SYN_SENT -> "SYN_SENT"
  | SYN_RCVD -> "SYN_RCVD" | ESTABLISHED -> "ESTABLISHED"
  | FIN_WAIT_1 -> "FIN_WAIT_1" | FIN_WAIT_2 -> "FIN_WAIT_2"
  | CLOSING -> "CLOSING" | TIME_WAIT -> "TIME_WAIT"
  | CLOSE_WAIT -> "CLOSE_WAIT" | LAST_ACK -> "LAST_ACK"

let note t msg =
  match t.trace with
  | None -> ()
  | Some tr -> Sim.Trace.record tr ~time:(Sim.Engine.now t.engine) ~actor:t.name msg

let create engine ?trace ~name cfg ~local_port ~remote_port ~transmit ~events =
  let now () = Sim.Engine.now engine in
  { engine; trace; name; cfg; isn_gen = Config.make_isn cfg engine; transmit; events;
    cc = cfg.Config.cc.Cc.create ~mss:cfg.Config.mss ~now;
    state = CLOSED; local_port; remote_port; iss = 0; irs = 0; snd_una = 0;
    snd_nxt = 0; snd_wnd = 0xFFFF; rcv_nxt = 0; rcv_wnd = min 0xFFFF cfg.Config.rcv_buf;
    unsent = []; unsent_bytes = 0; unacked = []; reasm = []; dupacks = 0; recover = 0;
    srtt = None; rttvar = 0.; rto = cfg.Config.rto_init; rto_timer = None;
    misc_timer = None; persist_timer = None; unread = 0; hs_retries = 0;
    fin_queued = false; fin_sent = false;
    established_signalled = false; segments_sent = 0; retransmissions = 0 }

let stream_finished t = t.unsent = [] && List.for_all (fun u -> u.u_payload = "") t.unacked

(* Link death: drop the PCB without wire traffic — cancel all three
   timers (rto, handshake/time-wait, persist) and close the state
   machine so nothing re-arms them. *)
let abort t =
  (match t.rto_timer with Some h -> Sim.Engine.cancel h | None -> ());
  (match t.misc_timer with Some h -> Sim.Engine.cancel h | None -> ());
  (match t.persist_timer with Some h -> Sim.Engine.cancel h | None -> ());
  t.rto_timer <- None;
  t.misc_timer <- None;
  t.persist_timer <- None;
  t.unsent <- [];
  t.unsent_bytes <- 0;
  t.unacked <- [];
  t.state <- CLOSED
let retransmissions t = t.retransmissions
let segments_sent t = t.segments_sent
let cwnd t = t.cc.Cc.window ()
let srtt t = t.srtt

(* --- output helpers --- *)

let send_segment t ?(payload = "") ?(flags = Wire.no_flags) seq =
  let flags = { flags with Wire.ack = flags.Wire.ack || t.state <> SYN_SENT && t.state <> CLOSED && t.state <> LISTEN } in
  let header =
    { Wire.src_port = t.local_port; dst_port = t.remote_port;
      seq = seq land 0xFFFFFFFF;
      ack = (if flags.Wire.ack then t.rcv_nxt land 0xFFFFFFFF else 0);
      flags; window = t.rcv_wnd }
  in
  t.segments_sent <- t.segments_sent + 1;
  t.transmit (Wire.encode header ~payload)

let cancel_timer h = match h with Some handle -> Sim.Engine.cancel handle | None -> ()

let update_rcv_wnd t =
  t.rcv_wnd <- max 0 (min 0xFFFF (t.cfg.Config.rcv_buf - t.unread))

let rec arm_rto t =
  cancel_timer t.rto_timer;
  t.rto_timer <- Some (Sim.Engine.schedule t.engine ~after:t.rto (fun () -> on_rto t))

and on_rto t =
  t.rto_timer <- None;
  match t.unacked with
  | [] -> ()
  | u :: _ ->
      t.retransmissions <- t.retransmissions + 1;
      u.u_retx <- true;
      u.u_sent_at <- Sim.Engine.now t.engine;
      t.rto <- Float.min (2. *. t.rto) t.cfg.Config.rto_max;
      t.cc.Cc.on_loss Cc.Timeout;
      send_segment t ~payload:u.u_payload ~flags:u.u_flags u.u_seq;
      note t "rto retransmit";
      arm_rto t

let queue_and_send t ?(payload = "") ?(flags = Wire.no_flags) () =
  let len = String.length payload + (if flags.Wire.syn || flags.Wire.fin then 1 else 0) in
  let u =
    { u_seq = t.snd_nxt; u_len = len; u_payload = payload; u_flags = flags;
      u_sent_at = Sim.Engine.now t.engine; u_retx = false }
  in
  t.unacked <- t.unacked @ [ u ];
  send_segment t ~payload ~flags t.snd_nxt;
  t.snd_nxt <- t.snd_nxt + len;
  if t.rto_timer = None then arm_rto t

(* Move bytes from unsent to the wire within both windows; append the FIN
   once the stream drains. Window arithmetic mixes the congestion window
   (cc), the peer window (snd_wnd) and reliability state (snd_nxt,
   snd_una) — the entanglement §2.3 describes. *)
let rec arm_persist t =
  if t.persist_timer = None then
    t.persist_timer <-
      Some
        (Sim.Engine.schedule t.engine ~after:0.5 (fun () ->
             t.persist_timer <- None;
             (* 1-byte zero-window probe *)
             if t.snd_wnd > 0 then try_output t
             else if t.snd_wnd = 0 && t.snd_nxt = t.snd_una && t.unsent_bytes > 0 then begin
               let probe, rest =
                 match List.rev t.unsent with
                 | c :: rest ->
                     ( String.sub c 0 1,
                       List.rev
                         (if String.length c > 1 then
                            String.sub c 1 (String.length c - 1) :: rest
                          else rest) )
                 | [] -> ("", [])
               in
               if probe <> "" then begin
                 t.unsent <- rest;
                 t.unsent_bytes <- t.unsent_bytes - 1;
                 queue_and_send t ~payload:probe ()
               end;
               arm_persist t
             end))

and try_output t =
  match t.state with
  | ESTABLISHED | CLOSE_WAIT | FIN_WAIT_1 | CLOSING | LAST_ACK -> (
      let in_flight = t.snd_nxt - t.snd_una in
      let window = int_of_float (Float.min (t.cc.Cc.window ()) (Float.of_int t.snd_wnd)) in
      let room = window - in_flight in
      let want = min t.cfg.Config.mss t.unsent_bytes in
      if want > 0 && t.snd_wnd = 0 then begin
        (* zero window: hold data, keep probing *)
        if in_flight = 0 then arm_persist t
      end
      else if want > 0 && (room >= want || in_flight = 0) then begin
        (* take [want] bytes from unsent *)
        let chunks = List.rev t.unsent in
        let buf = Buffer.create want in
        let rec take chunks need =
          match chunks with
          | [] -> []
          | c :: rest ->
              if need = 0 then chunks
              else if String.length c <= need then begin
                Buffer.add_string buf c;
                take rest (need - String.length c)
              end
              else begin
                Buffer.add_substring buf c 0 need;
                String.sub c need (String.length c - need) :: rest
              end
        in
        let rest = take chunks want in
        t.unsent <- List.rev rest;
        t.unsent_bytes <- t.unsent_bytes - want;
        queue_and_send t ~payload:(Buffer.contents buf) ();
        try_output t
      end
      else if
        t.fin_queued && (not t.fin_sent) && t.unsent_bytes = 0
        && t.snd_nxt = t.snd_una + List.fold_left (fun a u -> a + u.u_len) 0 t.unacked
        && List.for_all (fun u -> not u.u_flags.Wire.fin) t.unacked
      then begin
        t.fin_sent <- true;
        (match t.state with
        | ESTABLISHED -> t.state <- FIN_WAIT_1
        | CLOSE_WAIT -> t.state <- LAST_ACK
        | _ -> ());
        queue_and_send t ~flags:{ Wire.no_flags with fin = true; ack = true } ()
      end)
  | _ -> ()

(* --- API --- *)

let read t n =
  t.unread <- max 0 (t.unread - n);
  let before = t.rcv_wnd in
  update_rcv_wnd t;
  (* a window reopening must be announced or the stalled peer never
     learns (it has nothing to piggyback on) *)
  if before < t.cfg.Config.mss && t.rcv_wnd >= t.cfg.Config.mss
     && (t.state <> CLOSED && t.state <> LISTEN && t.state <> SYN_SENT)
  then send_segment t ~flags:{ Wire.no_flags with ack = true } t.snd_nxt

let connect t =
  t.iss <- t.isn_gen.Isn.next ~local_port:t.local_port ~remote_port:t.remote_port;
  t.snd_una <- t.iss;
  t.snd_nxt <- t.iss;
  t.state <- SYN_SENT;
  queue_and_send t ~flags:{ Wire.no_flags with syn = true } ()

let listen t = t.state <- LISTEN

let write t s =
  if String.length s > 0 then begin
    t.unsent <- s :: t.unsent;
    t.unsent_bytes <- t.unsent_bytes + String.length s;
    try_output t
  end

let close t =
  t.fin_queued <- true;
  try_output t

let enter_time_wait t =
  t.state <- TIME_WAIT;
  cancel_timer t.misc_timer;
  t.misc_timer <-
    Some
      (Sim.Engine.schedule t.engine ~after:(2. *. t.cfg.Config.msl) (fun () ->
           t.state <- CLOSED;
           t.events `Closed))

let signal_established t =
  if not t.established_signalled then begin
    t.established_signalled <- true;
    t.events `Established
  end

let update_rtt t sample =
  let srtt, rttvar =
    match t.srtt with
    | None -> (sample, sample /. 2.)
    | Some srtt ->
        let err = sample -. srtt in
        (srtt +. (0.125 *. err), t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar)))
  in
  t.srtt <- Some srtt;
  t.rttvar <- rttvar;
  t.rto <-
    Float.min t.cfg.Config.rto_max (Float.max t.cfg.Config.rto_min (srtt +. (4. *. rttvar)))

(* --- the big input function (tcp_input, tcp_process and tcp_receive all
   in one, as in the pseudocode on p.948 of TCP/IP Illustrated vol 2) --- *)

let from_wire t wire =
  match Wire.decode wire with
  | None -> note t "bad segment dropped"
  | Some (h, payload) ->
      (* demultiplexing check (DM's job, inline here) *)
      if h.Wire.dst_port <> t.local_port || h.Wire.src_port <> t.remote_port then
        note t "segment for another pcb"
      else begin
        let f = h.Wire.flags in
        if f.Wire.rst then begin
          if t.state <> CLOSED && t.state <> LISTEN then begin
            t.state <- CLOSED;
            cancel_timer t.rto_timer;
            cancel_timer t.misc_timer;
            t.events `Reset
          end
        end
        else begin
          match t.state with
          | CLOSED -> ()
          | LISTEN ->
              if f.Wire.syn then begin
                t.irs <- h.Wire.seq;
                t.rcv_nxt <- h.Wire.seq + 1;
                t.iss <-
                  t.isn_gen.Isn.next ~local_port:t.local_port ~remote_port:t.remote_port;
                t.snd_una <- t.iss;
                t.snd_nxt <- t.iss;
                t.state <- SYN_RCVD;
                queue_and_send t ~flags:{ Wire.no_flags with syn = true; ack = true } ()
              end
          | SYN_SENT ->
              if f.Wire.syn && f.Wire.ack then begin
                let ack =
                  Sublayer.Seqspace.reconstruct Iface.seq32 ~reference:(t.iss + 1)
                    h.Wire.ack
                in
                if ack = t.iss + 1 then begin
                  t.irs <- h.Wire.seq;
                  t.rcv_nxt <- h.Wire.seq + 1;
                  t.snd_una <- ack;
                  t.unacked <- [];
                  cancel_timer t.rto_timer;
                  t.rto_timer <- None;
                  t.snd_wnd <- h.Wire.window;
                  t.state <- ESTABLISHED;
                  send_segment t ~flags:{ Wire.no_flags with ack = true } t.snd_nxt;
                  signal_established t;
                  try_output t
                end
              end
              else if f.Wire.syn then begin
                (* simultaneous open *)
                t.irs <- h.Wire.seq;
                t.rcv_nxt <- h.Wire.seq + 1;
                t.state <- SYN_RCVD;
                send_segment t ~flags:{ Wire.no_flags with syn = true; ack = true } t.iss
              end
          | _ ->
              (* states with an established identity *)
              let seq_abs =
                Sublayer.Seqspace.reconstruct Iface.seq32 ~reference:t.rcv_nxt h.Wire.seq
              in
              (* duplicate SYN|ACK to an established connection: re-ack *)
              if f.Wire.syn then
                send_segment t ~flags:{ Wire.no_flags with ack = true } t.snd_nxt
              else begin
                (* --- ACK processing --- *)
                (if f.Wire.ack then begin
                   let ack_abs =
                     Sublayer.Seqspace.reconstruct Iface.seq32 ~reference:t.snd_una
                       h.Wire.ack
                   in
                   let window_was_closed = t.snd_wnd = 0 in
                   t.snd_wnd <- h.Wire.window;
                   (* A pure window update acknowledges nothing; restart
                      the output path explicitly or the sender stays
                      stalled after a zero-window episode. *)
                   if window_was_closed && t.snd_wnd > 0 then try_output t;
                   if t.state = SYN_RCVD && ack_abs >= t.iss + 1 then begin
                     t.state <- ESTABLISHED;
                     (match t.unacked with
                     | u :: rest when u.u_flags.Wire.syn ->
                         t.unacked <- rest;
                         if rest = [] then begin
                           cancel_timer t.rto_timer;
                           t.rto_timer <- None
                         end
                     | _ -> ());
                     t.snd_una <- max t.snd_una (t.iss + 1);
                     signal_established t
                   end;
                   if ack_abs > t.snd_una && ack_abs <= t.snd_nxt then begin
                     let bytes = ack_abs - t.snd_una in
                     (* trim unacked; collect an rtt sample *)
                     let newly, remaining =
                       List.partition (fun u -> u.u_seq + u.u_len <= ack_abs) t.unacked
                     in
                     let fin_acked = List.exists (fun u -> u.u_flags.Wire.fin) newly in
                     List.iter
                       (fun u ->
                         if not u.u_retx then
                           update_rtt t (Sim.Engine.now t.engine -. u.u_sent_at))
                       newly;
                     t.unacked <- remaining;
                     t.snd_una <- ack_abs;
                     t.dupacks <- 0;
                     (* clear exponential backoff on forward progress *)
                     (match t.srtt with
                     | Some srtt ->
                         t.rto <-
                           Float.min t.cfg.Config.rto_max
                             (Float.max t.cfg.Config.rto_min (srtt +. (4. *. t.rttvar)))
                     | None -> t.rto <- t.cfg.Config.rto_init);
                     t.cc.Cc.on_ack ~bytes ~rtt:None;
                     if remaining = [] then begin
                       cancel_timer t.rto_timer;
                       t.rto_timer <- None
                     end
                     else arm_rto t;
                     if fin_acked then begin
                       match t.state with
                       | FIN_WAIT_1 -> t.state <- FIN_WAIT_2
                       | CLOSING -> enter_time_wait t
                       | LAST_ACK ->
                           t.state <- CLOSED;
                           cancel_timer t.rto_timer;
                           t.events `Closed
                       | _ -> ()
                     end;
                     try_output t
                   end
                   else if
                     ack_abs = t.snd_una && t.unacked <> [] && payload = ""
                     && not f.Wire.fin
                   then begin
                     t.dupacks <- t.dupacks + 1;
                     if
                       t.dupacks = t.cfg.Config.dupack_threshold
                       && t.snd_una >= t.recover
                     then begin
                       match t.unacked with
                       | u :: _ ->
                           t.retransmissions <- t.retransmissions + 1;
                           u.u_retx <- true;
                           u.u_sent_at <- Sim.Engine.now t.engine;
                           t.cc.Cc.on_loss Cc.Dup_ack;
                           t.recover <- t.snd_nxt;
                           t.dupacks <- 0;
                           send_segment t ~payload:u.u_payload ~flags:u.u_flags u.u_seq;
                           arm_rto t
                       | [] -> ()
                     end
                   end
                 end);
                (* --- data processing --- *)
                let len = String.length payload in
                (if len > 0 then begin
                   if seq_abs = t.rcv_nxt then begin
                     t.rcv_nxt <- t.rcv_nxt + len;
                     t.unread <- t.unread + len;
                     t.events (`Data (Bitkit.Slice.of_string payload));
                     (* drain reassembly *)
                     let rec drain () =
                       match t.reasm with
                       | (s, p) :: rest when s = t.rcv_nxt ->
                           t.reasm <- rest;
                           t.rcv_nxt <- t.rcv_nxt + String.length p;
                           t.unread <- t.unread + String.length p;
                           t.events (`Data (Bitkit.Slice.of_string p));
                           drain ()
                       | (s, p) :: rest when s < t.rcv_nxt ->
                           (* overlap: should not happen with stable
                              segmentation; drop the stale buffer *)
                           ignore p;
                           t.reasm <- rest;
                           drain ()
                       | _ -> ()
                     in
                     drain ()
                   end
                   else if seq_abs > t.rcv_nxt && not (List.mem_assoc seq_abs t.reasm)
                   then
                     t.reasm <-
                       List.sort (fun (a, _) (b, _) -> Int.compare a b)
                         ((seq_abs, payload) :: t.reasm);
                   (* always ack data (with the updated window) *)
                   update_rcv_wnd t;
                   send_segment t ~flags:{ Wire.no_flags with ack = true } t.snd_nxt
                 end);
                (* --- FIN processing --- *)
                let fin_seq = seq_abs + len in
                if f.Wire.fin && fin_seq = t.rcv_nxt then begin
                  t.rcv_nxt <- t.rcv_nxt + 1;
                  send_segment t ~flags:{ Wire.no_flags with ack = true } t.snd_nxt;
                  t.events `Peer_closed;
                  match t.state with
                  | ESTABLISHED -> t.state <- CLOSE_WAIT
                  | FIN_WAIT_1 -> t.state <- CLOSING
                  | FIN_WAIT_2 -> enter_time_wait t
                  | _ -> ()
                end
                else if f.Wire.fin && fin_seq < t.rcv_nxt then
                  (* duplicate FIN: re-ack *)
                  send_segment t ~flags:{ Wire.no_flags with ack = true } t.snd_nxt
              end
        end
      end

let factory =
  {
    Host.fname = "monolithic";
    peek = Wire.peek_ports;
    make =
      (fun ?ins:_ engine ~name cfg ~local_port ~remote_port ~transmit ~events ->
        (* The monolith is deliberately opaque: no per-sublayer counters
           or spans exist to register (that contrast is the point of E19).
           It also keeps its string-based wire handling — it is the
           copying baseline — so the slice boundary is bridged here. *)
        let transmit s = transmit (Bitkit.Slice.of_string s) in
        let t = create engine ~name cfg ~local_port ~remote_port ~transmit ~events in
        {
          Host.ep_from_wire = (fun sl -> from_wire t (Bitkit.Slice.to_string sl));
          ep_connect = (fun () -> connect t);
          ep_listen = (fun () -> listen t);
          ep_write = write t;
          ep_read = read t;
          ep_close = (fun () -> close t);
          ep_abort = (fun () -> abort t);
          ep_finished = (fun () -> stream_finished t);
        });
  }
