(** The record (security) sublayer — the paper's §5 QUIC observation
    ("QUIC ... has a clean sub-layering between networking (the transport
    layer) and security (the record layer)") made concrete: a sublayer
    {e inserted} between CM and DM that encrypts and authenticates every
    PDU above the ports.

    Insertion is the strongest form of the replaceability claim: because
    this module's up and down ports are the same opaque wirebuf/slice
    pair every other sublayer crossing uses,
    [Machine.Stack (Cm) (Machine.Stack (Rec) (Dm))] composes with
    {e zero} changes to DM, CM, RD or OSR — none of them can tell the
    records are encrypted (test T3: the record fields are invisible bits
    to every other sublayer).

    Wire record: [seq:64 LE | ciphertext | tag:64]. Confidentiality is
    ChaCha20 (RFC 8439) keyed per direction (the nonce binds the sender's
    port and sequence number, so the two directions of a connection never
    reuse a nonce under the shared key); integrity is a SipHash-2-4 tag
    over the sender port, sequence number and ciphertext. Records that
    fail authentication are dropped silently — RD's retransmission
    machinery repairs the hole, so a corrupting channel needs no separate
    CRC guard under this stack. Keys are preshared (the simulator has no
    PKI); replay is harmless because CM/RD deduplicate above. *)

type t

val initial :
  ?stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  ?pool:Bitkit.Pool.t ->
  key:string ->
  local_port:int ->
  remote_port:int ->
  unit ->
  t
(** [key] is the 32-byte shared secret. Counters (when [stats] is
    given): [records_sent], [auth_failures], [copied_seal_bytes]. When
    [span] is given, instant [seal]/[open]/[auth_fail] markers record
    each record.

    When [pool] is given, records are sealed in place inside a loaned
    arena slot — the plaintext is emitted once into the slot, encrypted
    by in-place keystream XOR and tagged over the arena, with no
    intermediate flat strings (overruns fall back to the heap path,
    bit-identical on the wire). *)

val records_sent : t -> int
val auth_failures : t -> int

val seal : t -> string -> t * string
(** Encrypt-and-authenticate one PDU (exposed for unit tests). *)

val open_ : t -> string -> string option
(** Verify-and-decrypt one record; [None] if forged or damaged. *)

include
  Sublayer.Machine.S
    with type t := t
     and type up_req = Bitkit.Wirebuf.t
     and type up_ind = Bitkit.Slice.t
     and type down_req = Bitkit.Wirebuf.t
     and type down_ind = Bitkit.Slice.t
     and type timer = Sublayer.Machine.Nothing.t
