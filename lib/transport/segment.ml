module W = Bitkit.Bitio.Writer
module R = Bitkit.Bitio.Reader
module Slice = Bitkit.Slice
module Wirebuf = Bitkit.Wirebuf

let catch_truncated f = match f () with v -> Some v | exception R.Truncated -> None

(* Each sublayer's codec comes in three forms sharing one header writer:
   [write_x] appends just the header bits (the wirebuf push used by the
   zero-copy transmit path), [encode_x] is the legacy string codec
   (header + copied payload), and [decode_x_slice]/[decode_x] peel the
   header off a slice/string, the slice form returning a zero-copy view
   of the rest. *)

(* DM: src_port:16 dst_port:16 *)

type dm = { src_port : int; dst_port : int }

let dm_header_bytes = 4

let write_dm t w =
  W.uint16 w t.src_port;
  W.uint16 w t.dst_port

let encode_dm t ~payload =
  let w = W.create () in
  write_dm t w;
  W.bytes w payload;
  W.contents w

let read_dm r =
  let src_port = R.uint16 r in
  let dst_port = R.uint16 r in
  { src_port; dst_port }

let decode_dm s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let h = read_dm r in
      (h, R.rest r))

let decode_dm_slice sl =
  catch_truncated (fun () ->
      let r = R.of_slice sl in
      let h = read_dm r in
      (h, R.rest_slice r))

let peek_ports sl =
  catch_truncated (fun () ->
      let r = R.of_slice sl in
      let src = R.uint16 r in
      let dst = R.uint16 r in
      (src, dst))

(* CM: flags:8 (syn|ack|fin|rst|0000) isn_local:32 isn_remote:32 *)

type cm_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let no_cm_flags = { syn = false; ack = false; fin = false; rst = false }

type cm = { flags : cm_flags; isn_local : int; isn_remote : int }

let cm_header_bytes = 9

let write_cm t w =
  let f = t.flags in
  W.bit w f.syn;
  W.bit w f.ack;
  W.bit w f.fin;
  W.bit w f.rst;
  W.bits w 0 4;
  W.uint32 w (t.isn_local land 0xFFFFFFFF);
  W.uint32 w (t.isn_remote land 0xFFFFFFFF)

let encode_cm t ~payload =
  let w = W.create () in
  write_cm t w;
  W.bytes w payload;
  W.contents w

let read_cm r =
  let syn = R.bit r in
  let ack = R.bit r in
  let fin = R.bit r in
  let rst = R.bit r in
  let _pad = R.bits r 4 in
  let isn_local = R.uint32 r in
  let isn_remote = R.uint32 r in
  { flags = { syn; ack; fin; rst }; isn_local; isn_remote }

let decode_cm s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let h = read_cm r in
      (h, R.rest r))

let decode_cm_slice sl =
  catch_truncated (fun () ->
      let r = R.of_slice sl in
      let h = read_cm r in
      (h, R.rest_slice r))

(* RD: seq:32 ack:32 flags:8 (has_data|has_ack|sack_count:2|0000),
   then sack_count * (start:32 end:32) *)

type sack_block = { sack_start : int; sack_end : int }

type rd = {
  seq : int;
  ack : int;
  len : int;
  has_data : bool;
  has_ack : bool;
  sacks : sack_block list;
}

let rd_header_bytes = 11

let write_rd t w =
  let sacks =
    if List.length t.sacks > 3 then invalid_arg "encode_rd: >3 sacks" else t.sacks
  in
  W.uint32 w (t.seq land 0xFFFFFFFF);
  W.uint32 w (t.ack land 0xFFFFFFFF);
  W.uint16 w (t.len land 0xFFFF);
  W.bit w t.has_data;
  W.bit w t.has_ack;
  W.bits w (List.length sacks) 2;
  W.bits w 0 4;
  List.iter
    (fun b ->
      W.uint32 w (b.sack_start land 0xFFFFFFFF);
      W.uint32 w (b.sack_end land 0xFFFFFFFF))
    sacks

let encode_rd t ~payload =
  let w = W.create () in
  write_rd t w;
  W.bytes w payload;
  W.contents w

let read_rd r =
  let seq = R.uint32 r in
  let ack = R.uint32 r in
  let len = R.uint16 r in
  let has_data = R.bit r in
  let has_ack = R.bit r in
  let nsacks = R.bits r 2 in
  let _pad = R.bits r 4 in
  let sacks =
    List.init nsacks (fun _ ->
        let sack_start = R.uint32 r in
        let sack_end = R.uint32 r in
        { sack_start; sack_end })
  in
  { seq; ack; len; has_data; has_ack; sacks }

let decode_rd s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let h = read_rd r in
      (h, R.rest r))

let decode_rd_slice sl =
  catch_truncated (fun () ->
      let r = R.of_slice sl in
      let h = read_rd r in
      (h, R.rest_slice r))

(* OSR: window:16 flags:8 (ecn_echo|ecn_ce|000000) *)

type osr = { window : int; ecn_echo : bool; ecn_ce : bool }

let default_osr = { window = 0xFFFF; ecn_echo = false; ecn_ce = false }

let osr_header_bytes = 3

let write_osr t w =
  W.uint16 w t.window;
  W.bit w t.ecn_echo;
  W.bit w t.ecn_ce;
  W.bits w 0 6

let encode_osr t ~payload =
  let w = W.create () in
  write_osr t w;
  W.bytes w payload;
  W.contents w

let read_osr r =
  let window = R.uint16 r in
  let ecn_echo = R.bit r in
  let ecn_ce = R.bit r in
  let _pad = R.bits r 6 in
  { window; ecn_echo; ecn_ce }

let decode_osr s =
  catch_truncated (fun () ->
      let r = R.of_string s in
      let h = read_osr r in
      (h, R.rest r))

let decode_osr_slice sl =
  catch_truncated (fun () ->
      let r = R.of_slice sl in
      let h = read_osr r in
      (h, R.rest_slice r))

let header_bytes = dm_header_bytes + cm_header_bytes + rd_header_bytes + osr_header_bytes

let layout =
  let f fname owner offset width = { Sublayer.Layout.fname; owner; offset; width } in
  Sublayer.Layout.make_exn ~total_bits:(8 * header_bytes)
    [
      f "src_port" "dm" 0 16;
      f "dst_port" "dm" 16 16;
      f "cm_flags" "cm" 32 8;
      f "isn_local" "cm" 40 32;
      f "isn_remote" "cm" 72 32;
      f "seq" "rd" 104 32;
      f "ack" "rd" 136 32;
      f "len" "rd" 168 16;
      f "rd_flags" "rd" 184 8;
      f "window" "osr" 192 16;
      f "osr_flags" "osr" 208 8;
    ]

(* T3 asserted on the real wire path: with the audit armed (tests), every
   emitted wirebuf's header stack must match the registered bit
   ownership. Eager mode flattens headers away, so there is nothing to
   audit there — the wire bytes are identical by construction. *)
let audit_tx = ref false

let audit_wirebuf wb =
  if !audit_tx then begin
    match Wirebuf.appendices wb with
    | [] -> ()
    | appendix -> Sublayer.Layout.check_appendix_exn layout appendix
  end

(* Rewrite the OSR header's CE bit inside a full wire segment — what an
   ECN-capable router does to a packet it would otherwise have dropped.
   Non-data segments (CM controls) are returned unchanged. *)
let mark_ce wire =
  match decode_dm_slice wire with
  | None -> wire
  | Some (dm, rest) -> (
      match decode_cm_slice rest with
      | None -> wire
      | Some (cm, rd_pdu) ->
          if cm.flags <> no_cm_flags then wire
          else begin
            match decode_rd_slice rd_pdu with
            | None -> wire
            | Some (rd, osr_pdu) -> (
                match decode_osr_slice osr_pdu with
                | None -> wire
                | Some (osr, payload) ->
                    Wirebuf.of_slice payload
                    |> (fun wb ->
                         Wirebuf.push wb ~owner:"osr"
                           (write_osr { osr with ecn_ce = true }))
                    |> (fun wb -> Wirebuf.push wb ~owner:"rd" (write_rd rd))
                    |> (fun wb -> Wirebuf.push wb ~owner:"cm" (write_cm cm))
                    |> (fun wb -> Wirebuf.push wb ~owner:"dm" (write_dm dm))
                    |> Wirebuf.to_slice)
          end)
