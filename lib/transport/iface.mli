(** The narrow interfaces between TCP sublayers — test T2 made concrete.

    Everything two adjacent sublayers can ever say to each other is one of
    these variants. The types are deliberately small: OSR↔RD exchange
    stream offsets, opaque OSR byte blocks and summarised congestion
    signals; RD↔CM exchange opaque PDUs plus the connection lifecycle;
    CM↔DM exchange only opaque PDUs. A sublayer can be replaced by
    anything with the same [Machine.S] ports (experiment E10). *)

(** Application ⇄ OSR. *)
type app_req =
  [ `Connect  (** active open *)
  | `Listen   (** passive open *)
  | `Write of string  (** append bytes to the outgoing stream *)
  | `Read of int
    (** the application consumed [n] delivered bytes, freeing receive
        buffer — the flow-control feedback that reopens the advertised
        window *)
  | `Close    (** graceful close after the stream drains *) ]

type app_ind =
  [ `Established
  | `Data of Bitkit.Slice.t
      (** In-order stream bytes, as a view of the buffer they arrived in
          — valid for the duration of the delivering event; consumers
          that keep the bytes copy them out ({!Bitkit.Slice.add_to_buffer}
          into the host's stream buffer). *)
  | `Peer_closed      (** peer finished sending *)
  | `Closed           (** connection fully closed *)
  | `Reset
  | `Aborted
    (** the stack gave up: retransmission exhausted with no sign of the
        peer (ETIMEDOUT semantics) — local state is gone *) ]

(** OSR ⇄ RD. [`Transmit (offset, len, osr_pdu)] releases a segment that
    is "ready" (rate control's decision) — the PDU travels as a
    {!Bitkit.Wirebuf} so each lower sublayer appends its header without
    copying the payload. [`Set_block] keeps RD supplied with the current
    3-byte OSR header to stamp on every outgoing segment (including pure
    acks) — RD never looks inside it. Upward, [`Segment] delivers
    exactly-once (possibly out of order) as a zero-copy {!Bitkit.Slice}
    view of the received wire buffer, [`Acked (upto, block, rtt)] reports
    cumulative progress together with the peer's OSR block and an RTT
    sample, and [`Loss] summarises congestion signals. *)
type rd_req =
  [ `Connect
  | `Listen
  | `Close
  | `Transmit of int * int * Bitkit.Wirebuf.t
  | `Set_block of string
  | `Announce_block of string
    (** like [`Set_block], but also emit a pure ack immediately — the
        window-update segment that unblocks a zero-window-stalled peer *) ]

type rd_ind =
  [ `Established
  | `Segment of int * Bitkit.Slice.t  (** (stream offset, osr_pdu) *)
  | `Acked of int * Bitkit.Slice.t * float option
  | `Loss of Cc.loss
  | `Peer_fin
  | `Closed
  | `Reset
  | `Aborted  (** RD exhausted retransmission and dropped its state *) ]

(** RD ⇄ CM. CM stamps every [`Pdu] with the connection's ISNs and flags,
    and runs the SYN/FIN bootstrap machinery itself. [`Abort] tears the
    connection down unilaterally (RST to the peer, no upward echo).
    Downward PDUs are wirebufs (headers still accumulating); upward PDUs
    are slices of the received wire buffer. *)
type cm_req = [ `Connect | `Listen | `Close | `Abort | `Pdu of Bitkit.Wirebuf.t ]

type cm_ind =
  [ `Established of int * int  (** (isn_local, isn_remote) *)
  | `Pdu of Bitkit.Slice.t
  | `Peer_fin
  | `Closed
  | `Reset ]

val seq32 : Sublayer.Seqspace.t
(** The 32-bit TCP sequence space. *)
