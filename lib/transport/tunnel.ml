module Link = Sublayer.Link

(* Records above this are not traffic, they are corruption (the outer
   stream delivers reliable bytes, but a buggy peer could still frame
   nonsense); kill the link rather than waiting forever for 4 GiB. *)
let max_frame = 1 lsl 24

type t = {
  conn : Host.conn;
  lk : Bitkit.Slice.t Link.t;
  mutable pending : string;  (* outer-stream bytes not yet a whole record *)
  mutable n_in : int;
  mutable n_out : int;
}

let be32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (v land 0xFF))

let rd32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* Parse every complete record out of the pending bytes and deliver each
   as a slice view (the inner stack consumes it within this event, the
   same lifetime contract a channel delivery has). *)
let drain t =
  let fresh = Host.take_received t.conn in
  if fresh <> "" then begin
    t.pending <- (if t.pending = "" then fresh else t.pending ^ fresh);
    let data = t.pending in
    let len = String.length data in
    let view = Bitkit.Slice.of_string data in
    let pos = ref 0 in
    let ok = ref true in
    while !ok && len - !pos >= 4 do
      let n = rd32 data !pos in
      if n > max_frame then begin
        (* Framing is broken beyond recovery; the path below is gone. *)
        ok := false;
        Link.kill t.lk
      end
      else if len - !pos - 4 >= n then begin
        let record = Bitkit.Slice.sub view ~pos:(!pos + 4) ~len:n in
        pos := !pos + 4 + n;
        t.n_in <- t.n_in + 1;
        Link.deliver t.lk record
      end
      else ok := false
    done;
    if Link.alive t.lk then
      t.pending <-
        (if !pos = 0 then data else String.sub data !pos (len - !pos))
  end

let transmit t s =
  let n = Bitkit.Slice.length s in
  let b = Bytes.create (n + 4) in
  be32 b 0 n;
  Bitkit.Slice.blit s b 4;
  t.n_out <- t.n_out + 1;
  Host.write t.conn (Bytes.unsafe_to_string b)

let create ?(id = "tunnel") ?mtu ?(cost = 1.) conn =
  let tref = ref None in
  let lk =
    Link.make ~id ?mtu ~cost
      ~close:(fun () -> Host.close conn)
      ~transmit:(fun s -> match !tref with Some t -> transmit t s | None -> ())
      ()
  in
  let t = { conn; lk; pending = ""; n_in = 0; n_out = 0 } in
  tref := Some t;
  Host.on_data conn (fun _chunk -> drain t);
  Host.on_event conn (function
    | `Aborted | `Reset | `Closed -> Link.kill lk
    | _ -> ());
  (* Catch up with whatever happened before we took the callbacks over. *)
  if Host.closed conn then Link.kill lk else drain t;
  t

let link t = t.lk
let outer t = t.conn
let frames_in t = t.n_in
let frames_out t = t.n_out
