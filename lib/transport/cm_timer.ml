open Sublayer.Machine

let name = "cm-timer"

type phase =
  | Closed
  | Listening
  | Active of { isn_local : int; isn_remote : int option }
      (** [isn_remote = None] until the first segment from the peer. *)
  | Draining of { isn_local : int; isn_remote : int option }
      (** Local close requested; waiting out the quiet period. *)

type counters = {
  c_established : Sublayer.Stats.counter;
  c_stamped : Sublayer.Stats.counter;
  c_dropped : Sublayer.Stats.counter;
  c_idle_closes : Sublayer.Stats.counter;
}

type t = {
  cfg : Config.t;
  isn : Isn.t;
  local_port : int;
  remote_port : int;
  idle_timeout : float;
  ctrs : counters;
  sp : Sublayer.Span.ctx;
  phase : phase;
}

type up_req = Iface.cm_req
type up_ind = Iface.cm_ind
type down_req = Bitkit.Wirebuf.t
type down_ind = Bitkit.Slice.t
type timer = Idle

let initial ?stats ?span cfg ~isn ~local_port ~remote_port ~idle_timeout =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "cm-timer"
  in
  let ctrs =
    {
      c_established = Sublayer.Stats.counter sc "established";
      c_stamped = Sublayer.Stats.counter sc "segments_stamped";
      c_dropped = Sublayer.Stats.counter sc "segments_dropped";
      c_idle_closes = Sublayer.Stats.counter sc "idle_closes";
    }
  in
  { cfg; isn; local_port; remote_port; idle_timeout; ctrs;
    sp = (match span with Some sp -> sp | None -> Sublayer.Span.disabled name);
    phase = Closed }

let phase_name t =
  match t.phase with
  | Closed -> "CLOSED"
  | Listening -> "LISTEN"
  | Active _ -> "ACTIVE"
  | Draining _ -> "DRAINING"

let stamp ~isn_local ~isn_remote payload =
  Down
    (Bitkit.Wirebuf.push payload ~owner:"cm"
       (Segment.write_cm
          { Segment.flags = Segment.no_cm_flags;
            isn_local;
            isn_remote = Option.value ~default:0 isn_remote }))

let touch t = Set_timer (Idle, t.idle_timeout)

let handle_up_req t (req : up_req) =
  match (req, t.phase) with
  | `Connect, Closed ->
      (* No handshake: pick a time-unique ISN and declare the connection
         usable immediately. The peer's ISN is learned from its first
         segment. *)
      let isn_local =
        t.isn.Isn.next ~local_port:t.local_port ~remote_port:t.remote_port
      in
      Sublayer.Stats.incr t.ctrs.c_established;
      Sublayer.Span.instant t.sp ~detail:"active open" "established";
      ( { t with phase = Active { isn_local; isn_remote = None } },
        [ Up (`Established (isn_local, 0)); touch t ] )
  | `Listen, Closed -> ({ t with phase = Listening }, [])
  | `Close, Active { isn_local; isn_remote } ->
      (* Nothing to send; state evaporates after the quiet period. *)
      ( { t with phase = Draining { isn_local; isn_remote } },
        [ Set_timer (Idle, t.idle_timeout) ] )
  | `Close, (Closed | Listening) -> ({ t with phase = Closed }, [ Up `Closed ])
  | `Close, Draining _ -> (t, [])
  | `Abort, _ ->
      (* Watson-style CM keeps no peer state worth resetting: evaporate
         immediately instead of waiting out the quiet period. *)
      ({ t with phase = Closed }, [ Cancel_timer Idle ])
  | `Pdu payload, (Active { isn_local; isn_remote } | Draining { isn_local; isn_remote })
    ->
      Sublayer.Stats.incr t.ctrs.c_stamped;
      (t, [ stamp ~isn_local ~isn_remote payload ])
  | `Pdu _, _ ->
      Sublayer.Stats.incr t.ctrs.c_dropped;
      (t, [ Note "data while closed dropped" ])
  | (`Connect | `Listen), _ -> (t, [ Note "open ignored in this phase" ])

let handle_down_ind t pdu =
  match Segment.decode_cm_slice pdu with
  | None ->
      Sublayer.Stats.incr t.ctrs.c_dropped;
      (t, [ Note "undecodable cm pdu dropped" ])
  | Some (cm, payload) -> (
      let peer_isn = cm.Segment.isn_local in
      let echoed = cm.Segment.isn_remote in
      match t.phase with
      | Listening ->
          (* First contact: adopt the initiator's identity, mint our own
             ISN, and hand RD the pair straight away. *)
          let isn_local =
            t.isn.Isn.next ~local_port:t.local_port ~remote_port:t.remote_port
          in
          let t = { t with phase = Active { isn_local; isn_remote = Some peer_isn } } in
          Sublayer.Stats.incr t.ctrs.c_established;
          Sublayer.Span.instant t.sp ~detail:"first contact" "established";
          ( t,
            [ Up (`Established (isn_local, peer_isn)); Up (`Pdu payload); touch t ] )
      | Active { isn_local; isn_remote = None } when echoed = isn_local || echoed = 0 ->
          (* Learning the responder's ISN from its first segment. *)
          let t = { t with phase = Active { isn_local; isn_remote = Some peer_isn } } in
          Sublayer.Stats.incr t.ctrs.c_established;
          Sublayer.Span.instant t.sp ~detail:"peer isn learned" "established";
          ( t,
            [ Up (`Established (isn_local, peer_isn)); Up (`Pdu payload); touch t ] )
      | Active { isn_local; isn_remote = Some r } when peer_isn = r && echoed = isn_local
        ->
          (t, [ Up (`Pdu payload); touch t ])
      | Draining { isn_local; isn_remote = Some r } when peer_isn = r && echoed = isn_local
        ->
          (* Still acking the peer's stragglers during the quiet period. *)
          (t, [ Up (`Pdu payload); Set_timer (Idle, t.idle_timeout) ])
      | _ ->
          Sublayer.Stats.incr t.ctrs.c_dropped;
          (t, [ Note "segment with stale identity dropped (delta-t trust)" ]))

let handle_timer t Idle =
  match t.phase with
  | Active _ ->
      (* Silence for a full idle period: the peer is gone (or merely
         quiet — Watson's trade-off). *)
      Sublayer.Stats.incr t.ctrs.c_idle_closes;
      Sublayer.Span.instant t.sp "idle_close";
      ({ t with phase = Closed }, [ Up `Peer_fin; Up `Closed ])
  | Draining _ -> ({ t with phase = Closed }, [ Up `Closed ])
  | Closed | Listening -> (t, [])
