(** Pluggable congestion control.

    Rate control lives inside OSR (paper §3): OSR decides when a segment
    is "ready" for RD, driven by the congestion signals RD summarises
    upward (acks with optional RTT samples, loss events) — the same
    restructuring argument as Narayan et al.'s CCP. An algorithm only sees
    this interface; OSR only reads {!window}; so algorithms are drop-in
    replaceable (experiment E10). All window quantities are in bytes. *)

type loss = Timeout | Dup_ack

type instance = {
  name : string;
  window : unit -> float;  (** current congestion window, bytes *)
  on_ack : bytes:int -> rtt:float option -> unit;
  on_loss : loss -> unit;
  on_ecn : unit -> unit;
}

type algo = {
  algo_name : string;
  create : mss:int -> now:(unit -> float) -> instance;
}

val reno : algo
(** Slow start / congestion avoidance / halving on fast retransmit,
    window collapse on timeout (NewReno-ish, without full recovery
    bookkeeping). *)

val cubic : algo
(** CUBIC growth centred on the window before the last loss. *)

val vegas : algo
(** Delay-based: compares expected and actual rates via the minimum RTT,
    adjusting the window additively — a rate-style contrast to loss-based
    schemes. *)

val fixed : int -> algo
(** A constant window of [n] segments — the degenerate baseline. *)

val aimd : alpha:float -> beta:float -> algo
(** Textbook AIMD with configurable increase/decrease. *)

val all : algo list

val instrument : Sublayer.Stats.scope -> instance -> instance
(** Wrap an instance so its congestion events are counted ([acks],
    [losses], [ecn_marks]) and its window tracked as a [cwnd_bytes]
    gauge, whatever the algorithm. *)
