(* N-host port-switched fabric: the transport side of the E21 scale
   workload. Every host gets one ingress channel (its "NIC"); a shared
   transmit closure peeks the destination port of each wire segment and
   forwards it to the owning host's channel — a learning switch whose
   forwarding table is filled in at flow-setup time. Ports are allocated
   globally (flow [f] serves on [1024 + 2f], connects from [1025 + 2f]),
   so 5k flows stay well clear of the hosts' 49152+ ephemeral range. *)

type flow = {
  f_data : string;
  mutable f_client : Host.conn option;
  mutable f_server : Host.conn option;
}

type t = {
  hosts : Host.t array;
  flows : flow array;
  host_shard : int array; (* host -> owning shard; all zero when unsharded *)
  pools : Bitkit.Pool.t array; (* one per shard; empty when unpooled *)
}

let server_port f = 1024 + (2 * f)
let client_port f = 1025 + (2 * f)

(* The fabric owns its (shared) observability instances, so it also
   registers the sampling sources: the stats registry (once, not per
   host), the engine's own gauges, the process-global zero-copy counter
   and the trace-ring drop counter (per-shard-sized, so nondet), plus
   the GC source. *)
let telemetry_sources ?stats ?tracer ~slice_global tele engine =
  (match stats with
  | Some reg -> Sublayer.Stats.telemetry_source tele ~name:"fabric" reg
  | None -> ());
  Sim.Telemetry.add_counters tele ~name:"engine" (fun () ->
      [ ("events", Sim.Engine.events_fired engine) ]);
  Sim.Telemetry.add_gauges tele ~name:"engine" (fun () ->
      [ ("live", Sim.Engine.live engine); ("pending", Sim.Engine.pending engine) ]);
  (* [Slice.copied_bytes] is one process-global atomic: in a sharded run
     only the shard-0 instance may carry it, or the merge counts it once
     per shard. *)
  if slice_global then
    Sim.Telemetry.add_counters tele ~name:"slice" (fun () ->
        [ ("copied_bytes", Bitkit.Slice.copied_bytes ()) ]);
  (match tracer with
  | Some tr ->
      Sim.Telemetry.add_counters tele ~det:false ~name:"tracer" (fun () ->
          [ ("dropped", Sim.Tracer.dropped tr) ])
  | None -> ());
  Sim.Telemetry.add_gc tele

let create engine ?(hosts = 8) ?(config = Config.default)
    ?(factory = Host.sublayered) ?stats ?tracer ?monitors ?telemetry ?pool
    ?(seed = 7) ?link_faults ~channel ~flows ~bytes () =
  if hosts < 1 then invalid_arg "Fabric.create: need at least one host";
  if flows < 0 then invalid_arg "Fabric.create: negative flow count";
  if bytes < 0 then invalid_arg "Fabric.create: negative flow size";
  (* Register sources only once the arguments are validated, so a raise
     never leaves the caller's telemetry polluted by a fabric that was
     never built. *)
  (match telemetry with
  | Some tele -> telemetry_sources ?stats ?tracer ~slice_global:true tele engine
  | None -> ());
  (* Machine-held loans (DM emits, OSR stages, detector trailers) are
     deferred; they fall due once the event that produced them has fully
     applied. *)
  Option.iter
    (fun p ->
      Sim.Engine.after_event engine (fun () -> Bitkit.Pool.drain_deferred p))
    pool;
  let port_host = Hashtbl.create (2 * flows) in
  let ingress = Array.make hosts (fun (_ : Bitkit.Slice.t) -> ()) in
  let mk_chan dst =
    Sim.Channel.create engine channel ~size:Bitkit.Slice.length
      ~corrupt:Sim.Channel.corrupt_slice
      ~deliver:(fun s -> ingress.(dst) s)
      ()
  in
  let chan =
    match link_faults with
    | None ->
        (* One shared ingress channel per host (its "NIC"). *)
        let per_host = Array.init hosts mk_chan in
        fun ~src:_ ~dst -> per_host.(dst)
    | Some faults ->
        (* A channel per directed host pair, so a fault plan can impair
           individual links — a partial partition leaves the rest of the
           fabric untouched. *)
        let matrix =
          Array.init hosts (fun src ->
              Array.init hosts (fun dst ->
                  let ch = mk_chan dst in
                  (match faults (src, dst) with
                  | Some plan ->
                      Sim.Faultplan.apply engine plan
                        [ Sim.Faultplan.target
                            ~name:(Printf.sprintf "link:%d->%d" src dst)
                            ch ]
                  | None -> ());
                  ch))
        in
        fun ~src ~dst -> matrix.(src).(dst)
  in
  let transmit s =
    match factory.Host.peek s with
    | None -> ()
    | Some (src_port, dst_port) -> (
        match Hashtbl.find_opt port_host dst_port with
        | None -> ()
        | Some dst ->
            (* Every fabric port is registered at setup, so the source
               lookup only falls back when a foreign factory is probing. *)
            let src =
              Option.value ~default:dst (Hashtbl.find_opt port_host src_port)
            in
            let ch = chan ~src ~dst in
            let loaned =
              match pool with
              | None -> false
              | Some p -> (
                  match Bitkit.Pool.slot_of_slice p s with
                  | None -> false
                  | Some slot ->
                      (* Take over the emitting machine's loan for the
                         flight: the channel holds this reference until
                         the last scheduled delivery returns. *)
                      Bitkit.Pool.retain p slot;
                      Sim.Channel.send ~loan:(p, slot) ch s;
                      true)
            in
            if not loaned then Sim.Channel.send ch s)
  in
  let ins =
    Sublayer.Instrument.v ?stats ?tracer ?monitors ?telemetry ?pool ()
  in
  let harr =
    Array.init hosts (fun h ->
        let link =
          Sublayer.Link.make
            ~id:(Printf.sprintf "H%d" h)
            ~transmit ()
        in
        Host.create engine ~config ~factory ~ins
          ~name:(Printf.sprintf "H%d" h)
          ~link ())
  in
  Array.iteri
    (fun h host -> ingress.(h) <- Sublayer.Link.deliver (Host.wire_link host))
    harr;
  (* Per-flow payloads come from one seeded stream, so runs are exactly
     reproducible and the exact-delivery check is content-sensitive. *)
  let rng = Bitkit.Rng.create seed in
  let farr =
    Array.init flows (fun _ ->
        { f_data = String.init bytes (fun _ -> Char.chr (Bitkit.Rng.int rng 256));
          f_client = None; f_server = None })
  in
  let by_server_port = Hashtbl.create (max 1 flows) in
  for f = 0 to flows - 1 do
    let sh = (f + 1) mod hosts and ch = f mod hosts in
    Hashtbl.replace port_host (server_port f) sh;
    Hashtbl.replace port_host (client_port f) ch;
    Host.listen harr.(sh) ~port:(server_port f);
    Hashtbl.replace by_server_port (server_port f) f
  done;
  Array.iter
    (fun host ->
      Host.on_accept host (fun c ->
          match Hashtbl.find_opt by_server_port (Host.local_port c) with
          | None -> ()
          | Some f ->
              farr.(f).f_server <- Some c;
              Host.on_event c (function
                | `Peer_closed -> Host.close c
                | _ -> ())))
    harr;
  { hosts = harr; flows = farr; host_shard = Array.make hosts 0;
    pools = (match pool with None -> [||] | Some p -> [| p |]) }

(* --- sharded construction --------------------------------------------- *)

(* The sharded fabric differs from [create] in exactly the ways domain
   partitioning demands, and in no other:

   - Hosts are placed on shards by contiguous blocks
     ([h * shards / hosts]), so with flow [f] running from host [f mod
     hosts] to [(f+1) mod hosts], only the block-boundary host pairs
     cross shards.
   - Channels always form the per-directed-pair matrix (a shared ingress
     channel would be mutated by every source shard at once), each built
     on the {e source} host's engine — sends draw coins and read the
     fault-mutable config on the source domain — and each with a private
     RNG stream seeded by (seed, src, dst). Per-link streams are what
     make the draw sequence independent of global event interleave, so
     the [shards = 1] instance of this same construction is the
     bit-identity baseline for every other shard count.
   - Cross-shard channels schedule deliveries through {!Sim.Shard.post}:
     the message timestamp is [now + latency] with [latency >= delay >=
     lookahead], the conduits' conservative promise (validated here; and
     fault plans never touch [delay]).
   - Fault plans for a link run on the source shard's engine, mutating
     config the source domain reads.
   - Stats registries, tracers and monitor registries are per shard
     (single-domain mutable state); host [h] records into its shard's
     instance. Merge after the run with [Monitor.Runtime.merged_verdicts]
     / [Tracer.merged_chrome_json]. *)
let create_sharded shard ?(hosts = 8) ?(config = Config.default)
    ?(factory = Host.sublayered) ?stats ?tracer ?monitors ?telemetry ?pools
    ?(seed = 7) ?link_faults ~channel ~flows ~bytes () =
  let nshards = Sim.Shard.shards shard in
  if hosts < nshards then
    invalid_arg "Fabric.create_sharded: need at least one host per shard";
  if flows < 0 then invalid_arg "Fabric.create_sharded: negative flow count";
  if bytes < 0 then invalid_arg "Fabric.create_sharded: negative flow size";
  if Sim.Shard.lookahead shard > channel.Sim.Channel.delay then
    invalid_arg
      (Printf.sprintf
         "Fabric.create_sharded: shard lookahead %g exceeds link delay %g"
         (Sim.Shard.lookahead shard) channel.Sim.Channel.delay);
  let per_shard label = function
    | None -> Array.make nshards None
    | Some arr ->
        if Array.length arr <> nshards then
          invalid_arg
            (Printf.sprintf
               "Fabric.create_sharded: %s array length %d <> %d shards" label
               (Array.length arr) nshards);
        Array.map Option.some arr
  in
  let stats = per_shard "stats" stats in
  let tracer = per_shard "tracer" tracer in
  let monitors = per_shard "monitors" monitors in
  let telemetry = per_shard "telemetry" telemetry in
  (* A pool is single-domain state: one per shard, drained on that
     shard's engine, and never loaned across a conduit (the transmit
     closure copies out of the slot for cross-shard sends). *)
  let pools = per_shard "pools" pools in
  Array.iteri
    (fun s p ->
      Option.iter
        (fun p ->
          Sim.Engine.after_event
            (Sim.Shard.engine shard s)
            (fun () -> Bitkit.Pool.drain_deferred p))
        p)
    pools;
  (* Per-shard instances register the SAME source names as the serial
     fabric, so summing the deterministic series across shards
     ([Telemetry.merged_deterministic]) reproduces the single-engine
     series key for key. *)
  Array.iteri
    (fun s tele ->
      match tele with
      | Some tele ->
          telemetry_sources ?stats:stats.(s) ?tracer:tracer.(s)
            ~slice_global:(s = 0) tele
            (Sim.Shard.engine shard s)
      | None -> ())
    telemetry;
  let host_shard = Array.init hosts (fun h -> h * nshards / hosts) in
  let port_host = Hashtbl.create (2 * flows) in
  let ingress = Array.make hosts (fun (_ : Bitkit.Slice.t) -> ()) in
  let matrix =
    Array.init hosts (fun src ->
        let s_src = host_shard.(src) in
        let src_engine = Sim.Shard.engine shard s_src in
        Array.init hosts (fun dst ->
            let schedule =
              let s_dst = host_shard.(dst) in
              if s_dst = s_src then None
              else
                Some
                  (fun ~after fn ->
                    (* Same arithmetic as [Engine.schedule]. *)
                    Sim.Shard.post shard ~src:s_src ~dst:s_dst
                      ~time:(Sim.Engine.now src_engine +. after)
                      fn)
            in
            let ch =
              Sim.Channel.create src_engine channel ~size:Bitkit.Slice.length
                ~corrupt:Sim.Channel.corrupt_slice
                ~rng:(Bitkit.Rng.create (seed + 1 + (src * hosts) + dst))
                ?schedule
                ~deliver:(fun s -> ingress.(dst) s)
                ()
            in
            (match link_faults with
            | None -> ()
            | Some faults -> (
                match faults (src, dst) with
                | Some plan ->
                    Sim.Faultplan.apply src_engine plan
                      [ Sim.Faultplan.target
                          ~name:(Printf.sprintf "link:%d->%d" src dst)
                          ch ]
                | None -> ()));
            ch))
  in
  let transmit s =
    match factory.Host.peek s with
    | None -> ()
    | Some (src_port, dst_port) -> (
        match Hashtbl.find_opt port_host dst_port with
        | None -> ()
        | Some dst ->
            let src =
              Option.value ~default:dst (Hashtbl.find_opt port_host src_port)
            in
            let ch = matrix.(src).(dst) in
            let s_src = host_shard.(src) in
            let handled =
              match pools.(s_src) with
              | None -> false
              | Some p -> (
                  match Bitkit.Pool.slot_of_slice p s with
                  | None -> false
                  | Some slot ->
                      if host_shard.(dst) = s_src then begin
                        Bitkit.Pool.retain p slot;
                        Sim.Channel.send ~loan:(p, slot) ch s;
                        true
                      end
                      else begin
                        (* The slot dies with the source shard's event;
                           the conduit delivers on another domain, so the
                           bytes must leave the arena here. *)
                        Sim.Channel.send ch
                          (Bitkit.Slice.of_string (Bitkit.Slice.to_string s));
                        true
                      end)
            in
            if not handled then Sim.Channel.send ch s)
  in
  let harr =
    Array.init hosts (fun h ->
        let s = host_shard.(h) in
        let ins =
          Sublayer.Instrument.v ?stats:stats.(s) ?tracer:tracer.(s)
            ?monitors:monitors.(s) ?telemetry:telemetry.(s) ?pool:pools.(s) ()
        in
        let link =
          Sublayer.Link.make
            ~id:(Printf.sprintf "H%d" h)
            ~transmit ()
        in
        Host.create
          (Sim.Shard.engine shard s)
          ~config ~factory ~ins
          ~name:(Printf.sprintf "H%d" h)
          ~link ())
  in
  Array.iteri
    (fun h host -> ingress.(h) <- Sublayer.Link.deliver (Host.wire_link host))
    harr;
  (* Payloads drawn at construction time on the main domain, from the
     same stream as [create] — identical contents at every shard count. *)
  let rng = Bitkit.Rng.create seed in
  let farr =
    Array.init flows (fun _ ->
        { f_data = String.init bytes (fun _ -> Char.chr (Bitkit.Rng.int rng 256));
          f_client = None; f_server = None })
  in
  let by_server_port = Hashtbl.create (max 1 flows) in
  for f = 0 to flows - 1 do
    let sh = (f + 1) mod hosts and ch = f mod hosts in
    Hashtbl.replace port_host (server_port f) sh;
    Hashtbl.replace port_host (client_port f) ch;
    Host.listen harr.(sh) ~port:(server_port f);
    Hashtbl.replace by_server_port (server_port f) f
  done;
  Array.iter
    (fun host ->
      Host.on_accept host (fun c ->
          match Hashtbl.find_opt by_server_port (Host.local_port c) with
          | None -> ()
          | Some f ->
              farr.(f).f_server <- Some c;
              Host.on_event c (function
                | `Peer_closed -> Host.close c
                | _ -> ())))
    harr;
  { hosts = harr; flows = farr; host_shard;
    pools =
      Array.of_list (List.filter_map (fun p -> p) (Array.to_list pools)) }

let hosts t = t.hosts
let host_shard t h = t.host_shard.(h)
let launch_site t f = t.host_shard.(f mod Array.length t.hosts)

let pool_stats t =
  match t.pools with
  | [||] -> []
  | pools ->
      (* Summed across shards; key for key the same list one pool
         reports, so [Workload.run ~drops] callers need no sharding
         special case. *)
      let acc = Hashtbl.create 8 in
      let order = ref [] in
      Array.iter
        (fun p ->
          List.iter
            (fun (k, v) ->
              match Hashtbl.find_opt acc k with
              | None ->
                  order := k :: !order;
                  Hashtbl.replace acc k v
              | Some v0 -> Hashtbl.replace acc k (v0 + v))
            (Bitkit.Pool.stats p))
        pools;
      List.rev_map (fun k -> (k, Hashtbl.find acc k)) !order

let ops t =
  let nh = Array.length t.hosts in
  let launch f =
    let fl = t.flows.(f) in
    let c =
      Host.connect t.hosts.(f mod nh) ~local_port:(client_port f)
        ~remote_port:(server_port f) ()
    in
    fl.f_client <- Some c;
    Host.write c fl.f_data;
    Host.close c
  in
  let flow_finished f =
    let fl = t.flows.(f) in
    match (fl.f_client, fl.f_server) with
    | Some c, Some s ->
        Host.received_length s = String.length fl.f_data && Host.finished c
    | _ -> false
  in
  let flow_exact f =
    let fl = t.flows.(f) in
    match fl.f_server with
    | Some s -> Host.received s = fl.f_data
    | None -> false
  in
  { Sim.Workload.launch; flow_finished; flow_exact }
