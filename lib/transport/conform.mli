(** Conformance probes for the transport T2 interfaces.

    One {!Sublayer.Machine.Probe} instantiation per boundary the Figure 5
    stacks expose — app⇄OSR (closures around the endpoint, since the app
    sits above the stack), OSR⇄RD, RD⇄CM and the opaque PDU boundaries
    CM⇄DM, CM⇄Rec, Rec⇄DM. The probes are {e always} part of the
    composition; when no {!Monitor.Runtime.t} is supplied their state is
    a pair of shared no-op closures, so a monitored and an unmonitored
    endpoint have identical types, event counts and schedules. *)

module P_osr_rd : sig
  type t = {
    obs_req : Iface.rd_req -> unit;
    obs_ind : Iface.rd_ind -> unit;
  }

  include
    Sublayer.Machine.S
      with type t := t
       and type up_req = Iface.rd_req
       and type up_ind = Iface.rd_ind
       and type down_req = Iface.rd_req
       and type down_ind = Iface.rd_ind
       and type timer = Sublayer.Machine.Nothing.t
end

module P_rd_cm : sig
  type t = {
    obs_req : Iface.cm_req -> unit;
    obs_ind : Iface.cm_ind -> unit;
  }

  include
    Sublayer.Machine.S
      with type t := t
       and type up_req = Iface.cm_req
       and type up_ind = Iface.cm_ind
       and type down_req = Iface.cm_req
       and type down_ind = Iface.cm_ind
       and type timer = Sublayer.Machine.Nothing.t
end

module P_pdu : sig
  type t = {
    obs_req : Bitkit.Wirebuf.t -> unit;
    obs_ind : Bitkit.Slice.t -> unit;
  }

  include
    Sublayer.Machine.S
      with type t := t
       and type up_req = Bitkit.Wirebuf.t
       and type up_ind = Bitkit.Slice.t
       and type down_req = Bitkit.Wirebuf.t
       and type down_ind = Bitkit.Slice.t
       and type timer = Sublayer.Machine.Nothing.t
end

type alloc_pair = Sublayer.Alloc.cell option * Sublayer.Alloc.cell option
(** [(above, below)]: where {!Sublayer.Alloc} charges the interval that
    opens as a message crosses this boundary — a request heading down
    charges what follows to [below], an indication heading up to
    [above].  Omitted (or [None] cells), crossings are unattributed; the
    hooks are free while [Alloc] is globally disabled either way. *)

val osr_rd :
  ?spec:Monitor.Spec.t ->
  ?alloc:alloc_pair ->
  Monitor.Runtime.t option ->
  conn:string ->
  P_osr_rd.t
(** [spec] defaults to {!Monitor.Specs.osr_rd}; the {!Msg} stack passes
    [Monitor.Specs.stream_rd ~upper:"msg"]. *)

val rd_cm :
  ?alloc:alloc_pair -> Monitor.Runtime.t option -> conn:string -> P_rd_cm.t

val cm_dm :
  ?alloc:alloc_pair -> Monitor.Runtime.t option -> conn:string -> P_pdu.t

val cm_rec :
  ?alloc:alloc_pair -> Monitor.Runtime.t option -> conn:string -> P_pdu.t

val rec_dm :
  ?alloc:alloc_pair -> Monitor.Runtime.t option -> conn:string -> P_pdu.t

val app :
  Monitor.Runtime.t option ->
  conn:string ->
  (Iface.app_req -> unit) * (Iface.app_ind -> unit)
(** Observation closures for the application boundary; the endpoint
    wrappers call them just before handing the request to the stack /
    the indication to the app. *)
