(** The sublayered TCP with the {!Rec} security sublayer inserted between
    CM and DM: [Osr / Rd / Cm / Rec / Dm]. Every module except the new
    one is byte-identical to {!Tcp_sublayered}'s — the "insert a
    sublayer" experiment (paper §5's QUIC record-layer observation). *)

type t

val create :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?ins:Sublayer.Instrument.t ->
  key:string ->
  name:string ->
  Config.t ->
  local_port:int ->
  remote_port:int ->
  transmit:(Bitkit.Slice.t -> unit) ->
  events:(Iface.app_ind -> unit) ->
  t
(** [ins] bundles the instruments exactly as in
    {!Tcp_sublayered.create}; the extra [rec.*] scope rides along. *)

val connect : t -> unit
val listen : t -> unit
val write : t -> string -> unit

val read : t -> int -> unit
(** Tell OSR the application consumed [n] delivered bytes (flow-control
    credit; {!Host} calls this automatically unless auto-read is off). *)

val close : t -> unit
val from_wire : t -> Bitkit.Slice.t -> unit

val halt : t -> unit
(** Make the whole stack inert (link death below). *)

val stream_finished : t -> bool
val records_sent : t -> int
val auth_failures : t -> int

val factory : key:string -> Host.factory
(** Both ends must share [key] (32 bytes). *)

val demo_key : string
(** A fixed 32-byte key for examples and tests. *)
