module Machine = Sublayer.Machine

(* Identical lower stack to Tcp_sublayered; only the top module differs. *)
module Lower = Machine.Stack (Cm) (Machine.Stack (Conform.P_pdu) (Dm))
module Middle = Machine.Stack (Rd) (Machine.Stack (Conform.P_rd_cm) (Lower))
module Full = Machine.Stack (Msg) (Machine.Stack (Conform.P_osr_rd) (Middle))
module R = Sublayer.Runtime.Make (Full)

type t = R.t

let create engine ?trace ?(ins = Sublayer.Instrument.none) ~name cfg ~local_port ~remote_port ~transmit ~events =
  let module I = Sublayer.Instrument in
  let now () = Sim.Engine.now engine in
  let isn = Config.make_isn cfg engine in
  let monitors = ins.I.monitors in
  let sc sub = I.scope ins sub in
  let sp sub = I.span ins ~now ~track:name sub in
  let msg = Msg.initial ?stats:(sc "msg") ?cc_stats:(sc "cc") ?span:(sp "msg") cfg ~now in
  let rd = Rd.initial ?stats:(sc "rd") ?span:(sp "rd") cfg ~now in
  let cm = Cm.initial ?stats:(sc "cm") ?span:(sp "cm") cfg ~isn ~local_port ~remote_port in
  let dm = Dm.make ?stats:(sc "dm") ?span:(sp "dm") ~local_port ~remote_port () in
  R.create engine ?trace ~name ~transmit ~deliver:events
    ( msg,
      ( Conform.osr_rd ~spec:(Monitor.Specs.stream_rd ~upper:"msg") monitors
          ~conn:name,
        (rd, (Conform.rd_cm monitors ~conn:name, (cm, (Conform.cm_dm monitors ~conn:name, dm)))) ) )

let connect t = R.from_above t `Connect
let listen t = R.from_above t `Listen
let send t body = R.from_above t (`Send body)
let close t = R.from_above t `Close
let from_wire t wire = R.from_below t wire
let halt t = R.halt t

let msg_state t = fst (R.state t)
let messages_sent t = Msg.messages_sent (msg_state t)
let messages_delivered t = Msg.messages_delivered (msg_state t)
let finished t = Msg.stream_finished (msg_state t)
