(** A message-mode transport endpoint: the {!Msg} sublayer composed over
    the {e unchanged} RD/CM/DM stack — the top sublayer of Figure 5
    replaced wholesale (experiment E15). Compare with {!Tcp_sublayered},
    which differs only in its top module. *)

type t

val create :
  Sim.Engine.t ->
  ?trace:Sim.Trace.t ->
  ?ins:Sublayer.Instrument.t ->
  name:string ->
  Config.t ->
  local_port:int ->
  remote_port:int ->
  transmit:(Bitkit.Slice.t -> unit) ->
  events:(Msg.up_ind -> unit) ->
  t

val connect : t -> unit
val listen : t -> unit
val send : t -> string -> unit
(** Send one message (up to 65535 bytes); messages are delivered whole,
    exactly once, but not necessarily in send order. *)

val close : t -> unit
val from_wire : t -> Bitkit.Slice.t -> unit

val halt : t -> unit
(** Make the whole stack inert (link death below). *)

val messages_sent : t -> int
val messages_delivered : t -> int
val finished : t -> bool
