module Machine = Sublayer.Machine

module P_osr_rd = Machine.Probe (struct
  type req = Iface.rd_req
  type ind = Iface.rd_ind

  let name = "mon"
end)

module P_rd_cm = Machine.Probe (struct
  type req = Iface.cm_req
  type ind = Iface.cm_ind

  let name = "mon"
end)

module P_pdu = Machine.Probe (struct
  type req = Bitkit.Wirebuf.t
  type ind = Bitkit.Slice.t

  let name = "mon"
end)

(* Shared no-op closures: an unmonitored probe carries these, so the
   monitors-off path allocates nothing per endpoint beyond the probe
   record itself. *)
let nop _ = ()

type alloc_pair = Sublayer.Alloc.cell option * Sublayer.Alloc.cell option

(* Allocation attribution at the boundary: a [req] is heading down (the
   machine below runs next), an [ind] up. The cross happens before the
   observation so the monitor's own (zero-allocation) work is charged to
   the destination machine along with its step. The hooks themselves are
   no-ops while [Sublayer.Alloc] is disabled. *)
let with_alloc alloc obs_req obs_ind =
  match alloc with
  | None -> (obs_req, obs_ind)
  | Some (above, below) ->
      ( (fun r ->
          Sublayer.Alloc.cross below;
          obs_req r),
        fun i ->
          Sublayer.Alloc.cross above;
          obs_ind i )

(* Resolve the alphabet ids once at attach time; the per-event closures
   then do a constructor match and one [observe] call. *)

let osr_rd ?(spec = Monitor.Specs.osr_rd) ?alloc mon ~conn =
  let obs_req, obs_ind =
    match mon with
    | None -> ((nop : Iface.rd_req -> unit), (nop : Iface.rd_ind -> unit))
    | Some reg ->
      let inst = Monitor.Runtime.attach reg ~key:conn spec in
      let idd m = Monitor.Spec.msg_id spec Monitor.Spec.Down m
      and idu m = Monitor.Spec.msg_id spec Monitor.Spec.Up m in
      let connect = idd "connect" and listen = idd "listen"
      and close = idd "close" and transmit = idd "transmit"
      and set_block = idd "set_block"
      and announce_block = idd "announce_block"
      and established = idu "established" and segment = idu "segment"
      and acked = idu "acked" and loss = idu "loss"
      and peer_fin = idu "peer_fin" and closed = idu "closed"
      and reset = idu "reset" and aborted = idu "aborted" in
      let ob mid ~a ~b = Monitor.Runtime.observe inst mid ~a ~b in
      let obs_req : Iface.rd_req -> unit = function
        | `Connect -> ob connect ~a:0 ~b:0
        | `Listen -> ob listen ~a:0 ~b:0
        | `Close -> ob close ~a:0 ~b:0
        | `Transmit (off, len, _) -> ob transmit ~a:off ~b:len
        | `Set_block s -> ob set_block ~a:(String.length s) ~b:0
        | `Announce_block s -> ob announce_block ~a:(String.length s) ~b:0
      and obs_ind : Iface.rd_ind -> unit = function
        | `Established -> ob established ~a:0 ~b:0
        | `Segment (off, pdu) -> ob segment ~a:off ~b:(Bitkit.Slice.length pdu)
        | `Acked (upto, _, _) -> ob acked ~a:upto ~b:0
        | `Loss _ -> ob loss ~a:0 ~b:0
        | `Peer_fin -> ob peer_fin ~a:0 ~b:0
        | `Closed -> ob closed ~a:0 ~b:0
        | `Reset -> ob reset ~a:0 ~b:0
        | `Aborted -> ob aborted ~a:0 ~b:0
        in
        (obs_req, obs_ind)
  in
  let obs_req, obs_ind = with_alloc alloc obs_req obs_ind in
  { P_osr_rd.obs_req; obs_ind }

let rd_cm ?alloc mon ~conn =
  let obs_req, obs_ind =
    match mon with
    | None -> ((nop : Iface.cm_req -> unit), (nop : Iface.cm_ind -> unit))
    | Some reg ->
      let spec = Monitor.Specs.rd_cm in
      let inst = Monitor.Runtime.attach reg ~key:conn spec in
      let idd m = Monitor.Spec.msg_id spec Monitor.Spec.Down m
      and idu m = Monitor.Spec.msg_id spec Monitor.Spec.Up m in
      let connect = idd "connect" and listen = idd "listen"
      and close = idd "close" and abort = idd "abort"
      and dpdu = idd "pdu" and established = idu "established"
      and updu = idu "pdu" and peer_fin = idu "peer_fin"
      and closed = idu "closed" and reset = idu "reset" in
      let ob mid ~a ~b = Monitor.Runtime.observe inst mid ~a ~b in
      let obs_req : Iface.cm_req -> unit = function
        | `Connect -> ob connect ~a:0 ~b:0
        | `Listen -> ob listen ~a:0 ~b:0
        | `Close -> ob close ~a:0 ~b:0
        | `Abort -> ob abort ~a:0 ~b:0
        | `Pdu buf -> ob dpdu ~a:(Bitkit.Wirebuf.length buf) ~b:0
      and obs_ind : Iface.cm_ind -> unit = function
        | `Established (il, ir) -> ob established ~a:il ~b:ir
        | `Pdu s -> ob updu ~a:(Bitkit.Slice.length s) ~b:0
        | `Peer_fin -> ob peer_fin ~a:0 ~b:0
        | `Closed -> ob closed ~a:0 ~b:0
        | `Reset -> ob reset ~a:0 ~b:0
        in
        (obs_req, obs_ind)
  in
  let obs_req, obs_ind = with_alloc alloc obs_req obs_ind in
  { P_rd_cm.obs_req; obs_ind }

let spec_cm_dm =
  Monitor.Specs.opaque ~name:"cm-dm" ~upper:"cm" ~lower:"dm" ~min_up:1 ()

let spec_cm_rec =
  Monitor.Specs.opaque ~name:"cm-rec" ~upper:"cm" ~lower:"rec" ~min_up:1 ()

let spec_rec_dm =
  Monitor.Specs.opaque ~name:"rec-dm" ~upper:"rec" ~lower:"dm" ~min_up:1 ()

let pdu spec ?alloc mon ~conn =
  let obs_req, obs_ind =
    match mon with
    | None -> ((nop : Bitkit.Wirebuf.t -> unit), (nop : Bitkit.Slice.t -> unit))
    | Some reg ->
        let inst = Monitor.Runtime.attach reg ~key:conn spec in
        let down = Monitor.Spec.msg_id spec Monitor.Spec.Down "pdu"
        and up = Monitor.Spec.msg_id spec Monitor.Spec.Up "pdu" in
        let obs_req buf =
          Monitor.Runtime.observe inst down ~a:(Bitkit.Wirebuf.length buf) ~b:0
        and obs_ind s =
          Monitor.Runtime.observe inst up ~a:(Bitkit.Slice.length s) ~b:0
        in
        (obs_req, obs_ind)
  in
  let obs_req, obs_ind = with_alloc alloc obs_req obs_ind in
  { P_pdu.obs_req; obs_ind }

let cm_dm = pdu spec_cm_dm
let cm_rec = pdu spec_cm_rec
let rec_dm = pdu spec_rec_dm

let app mon ~conn =
  match mon with
  | None -> (nop, nop)
  | Some reg ->
      let spec = Monitor.Specs.app in
      let inst = Monitor.Runtime.attach reg ~key:conn spec in
      let idd m = Monitor.Spec.msg_id spec Monitor.Spec.Down m
      and idu m = Monitor.Spec.msg_id spec Monitor.Spec.Up m in
      let connect = idd "connect" and listen = idd "listen"
      and write = idd "write" and read = idd "read"
      and close = idd "close" and established = idu "established"
      and data = idu "data" and peer_closed = idu "peer_closed"
      and closed = idu "closed" and reset = idu "reset"
      and aborted = idu "aborted" in
      let ob mid ~a = Monitor.Runtime.observe inst mid ~a ~b:0 in
      let obs_req : Iface.app_req -> unit = function
        | `Connect -> ob connect ~a:0
        | `Listen -> ob listen ~a:0
        | `Write s -> ob write ~a:(String.length s)
        | `Read n -> ob read ~a:n
        | `Close -> ob close ~a:0
      and obs_ind : Iface.app_ind -> unit = function
        | `Established -> ob established ~a:0
        | `Data s -> ob data ~a:(Bitkit.Slice.length s)
        | `Peer_closed -> ob peer_closed ~a:0
        | `Closed -> ob closed ~a:0
        | `Reset -> ob reset ~a:0
        | `Aborted -> ob aborted ~a:0
      in
      (obs_req, obs_ind)
