open Sublayer.Machine

let name = "cm"

type phase =
  | Closed
  | Listen
  | Syn_sent of int
  | Syn_rcvd of int
  | Established
  | Fin_wait_1 of int
  | Fin_wait_2
  | Closing of int
  | Time_wait
  | Close_wait
  | Last_ack of int

type counters = {
  c_established : Sublayer.Stats.counter;
  c_resets_sent : Sublayer.Stats.counter;
  c_resets_received : Sublayer.Stats.counter;
  c_handshake_retx : Sublayer.Stats.counter;
  c_dropped : Sublayer.Stats.counter;
}

type t = {
  cfg : Config.t;
  isn : Isn.t;
  local_port : int;
  remote_port : int;
  phase : phase;
  isn_local : int option;
  isn_remote : int option;
  ctrs : counters;
  sp : Sublayer.Span.ctx;
}

type up_req = Iface.cm_req
type up_ind = Iface.cm_ind
type down_req = Bitkit.Wirebuf.t
type down_ind = Bitkit.Slice.t
type timer = Handshake | Fin_retx | Time_wait_expiry

let initial ?stats ?span cfg ~isn ~local_port ~remote_port =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "cm"
  in
  let sp =
    match span with Some sp -> sp | None -> Sublayer.Span.disabled name
  in
  let ctrs =
    {
      c_established = Sublayer.Stats.counter sc "established";
      c_resets_sent = Sublayer.Stats.counter sc "resets_sent";
      c_resets_received = Sublayer.Stats.counter sc "resets_received";
      c_handshake_retx = Sublayer.Stats.counter sc "handshake_retx";
      c_dropped = Sublayer.Stats.counter sc "segments_dropped";
    }
  in
  { cfg; isn; local_port; remote_port; phase = Closed; isn_local = None;
    isn_remote = None; ctrs; sp }

let phase t = t.phase

let phase_name t =
  match t.phase with
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent _ -> "SYN_SENT"
  | Syn_rcvd _ -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 _ -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Closing _ -> "CLOSING"
  | Time_wait -> "TIME_WAIT"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack _ -> "LAST_ACK"

let isns t =
  match (t.isn_local, t.isn_remote) with
  | Some l, Some r -> Some (l, r)
  | _ -> None

(* Control PDUs carry no payload; only CM's own header. *)
let control t flags =
  let header =
    { Segment.flags;
      isn_local = Option.value ~default:0 t.isn_local;
      isn_remote = Option.value ~default:0 t.isn_remote }
  in
  Down (Bitkit.Wirebuf.push Bitkit.Wirebuf.empty ~owner:"cm" (Segment.write_cm header))

let syn = { Segment.no_cm_flags with syn = true }
let syn_ack = { Segment.no_cm_flags with syn = true; ack = true }
let bare_ack = { Segment.no_cm_flags with ack = true }
let fin = { Segment.no_cm_flags with fin = true }
let rst = { Segment.no_cm_flags with rst = true }

let backoff base n = base *. (2. ** Float.of_int (min n 6))

(* Abort the connection locally and tell the peer. *)
let abort t reason =
  Sublayer.Stats.incr t.ctrs.c_resets_sent;
  Sublayer.Span.instant t.sp ~detail:reason "rst_out";
  Sublayer.Span.close_all t.sp ~detail:"reset" ();
  ( { t with phase = Closed },
    [ Note reason; control t rst; Cancel_timer Handshake; Cancel_timer Fin_retx;
      Up `Reset ] )

(* Total: a handshake that reaches Established without both ISNs recorded
   (a peer feeding us a malformed handshake) aborts with an RST instead of
   crashing the host.  [t] already has [phase = Established] at the call
   sites; [abort] overrides it back to Closed. *)
let establish t pre_acts post_acts =
  match isns t with
  | Some (l, r) ->
      Sublayer.Stats.incr t.ctrs.c_established;
      Sublayer.Span.close t.sp ~key:"hs" ~detail:"established" ();
      (t, pre_acts @ (Up (`Established (l, r)) :: post_acts))
  | None -> abort t "handshake incoherent (missing ISN); reset"

let handle_up_req t (req : up_req) =
  match (req, t.phase) with
  | `Connect, Closed ->
      let isn_local = t.isn.Isn.next ~local_port:t.local_port ~remote_port:t.remote_port in
      let t = { t with phase = Syn_sent 0; isn_local = Some isn_local } in
      Sublayer.Span.open_ t.sp ~key:"hs"
        ~trace:(Sublayer.Span.fresh_trace t.sp) "handshake";
      (t, [ Note "SYN_SENT (active open)"; control t syn;
            Set_timer (Handshake, t.cfg.Config.syn_rto) ])
  | `Listen, Closed -> ({ t with phase = Listen }, [])
  | `Close, Established ->
      let t = { t with phase = Fin_wait_1 0 } in
      Sublayer.Span.open_ t.sp ~key:"td"
        ~trace:(Sublayer.Span.fresh_trace t.sp) "teardown";
      (t, [ Note "FIN_WAIT_1 (local close)"; control t fin;
            Set_timer (Fin_retx, t.cfg.Config.syn_rto) ])
  | `Close, Close_wait ->
      let t = { t with phase = Last_ack 0 } in
      Sublayer.Span.open_ t.sp ~key:"td"
        ~trace:(Sublayer.Span.fresh_trace t.sp) "teardown";
      (t, [ control t fin; Set_timer (Fin_retx, t.cfg.Config.syn_rto) ])
  | `Close, (Closed | Listen) -> ({ t with phase = Closed }, [ Up `Closed ])
  | `Close, _ -> (t, [ Note "close ignored in this phase" ])
  | `Abort, (Closed | Listen) -> ({ t with phase = Closed }, [])
  | `Abort, _ ->
      (* RD gave up (or the application demanded an abort): RST the peer
         and drop every timer. No upward indication — the requester is
         the one who initiated the abort. *)
      Sublayer.Stats.incr t.ctrs.c_resets_sent;
      Sublayer.Span.instant t.sp ~detail:"local abort" "rst_out";
      Sublayer.Span.close_all t.sp ~detail:"reset" ();
      ( { t with phase = Closed },
        [ Note "ABORT (local)"; control t rst; Cancel_timer Handshake;
          Cancel_timer Fin_retx; Cancel_timer Time_wait_expiry ] )
  | `Pdu payload, (Established | Fin_wait_1 _ | Fin_wait_2 | Close_wait | Closing _) ->
      (* Data path: stamp the connection's identity on the segment. *)
      let header =
        { Segment.flags = Segment.no_cm_flags;
          isn_local = Option.get t.isn_local;
          isn_remote = Option.get t.isn_remote }
      in
      (t, [ Down (Bitkit.Wirebuf.push payload ~owner:"cm" (Segment.write_cm header)) ])
  | `Pdu _, _ -> (t, [ Note "data before establishment dropped" ])
  | (`Connect | `Listen), _ -> (t, [ Note "open in non-closed phase ignored" ])

(* Does an incoming non-SYN segment belong to this incarnation? *)
let identity_ok t (cm : Segment.cm) =
  match (t.isn_local, t.isn_remote) with
  | Some l, Some r -> cm.Segment.isn_local = r && cm.Segment.isn_remote = l
  | Some l, None -> cm.Segment.isn_remote = l
  | _ -> false

let handle_down_ind t pdu =
  match Segment.decode_cm_slice pdu with
  | None ->
      Sublayer.Stats.incr t.ctrs.c_dropped;
      (t, [ Note "undecodable cm pdu dropped" ])
  | Some (cm, payload) -> (
      let f = cm.Segment.flags in
      if f.Segment.rst then begin
        let plausible =
          identity_ok t cm || match t.phase with Syn_sent _ -> true | _ -> false
        in
        match t.phase with
        | Closed | Listen -> (t, [ Note "rst ignored" ])
        | _ when plausible ->
            Sublayer.Stats.incr t.ctrs.c_resets_received;
            Sublayer.Span.instant t.sp "rst_in";
            Sublayer.Span.close_all t.sp ~detail:"reset" ();
            ( { t with phase = Closed },
              [ Cancel_timer Handshake; Cancel_timer Fin_retx; Up `Reset ] )
        | _ -> (t, [ Note "rst with wrong identity ignored" ])
      end
      else
        match (t.phase, f.Segment.syn, f.Segment.ack, f.Segment.fin) with
        (* --- Handshake --- *)
        | Listen, true, false, false ->
            let isn_local =
              t.isn.Isn.next ~local_port:t.local_port ~remote_port:t.remote_port
            in
            let t =
              { t with phase = Syn_rcvd 0; isn_local = Some isn_local;
                isn_remote = Some cm.Segment.isn_local }
            in
            Sublayer.Span.open_ t.sp ~key:"hs"
              ~trace:(Sublayer.Span.fresh_trace t.sp) "handshake";
            (t, [ control t syn_ack; Set_timer (Handshake, t.cfg.Config.syn_rto) ])
        | Syn_sent _, true, true, false when cm.Segment.isn_remote = Option.get t.isn_local ->
            let t = { t with phase = Established; isn_remote = Some cm.Segment.isn_local } in
            establish t
              [ Note "ESTABLISHED (syn|ack received)"; control t bare_ack;
                Cancel_timer Handshake ]
              []
        | Syn_sent _, true, false, false ->
            (* Simultaneous open. *)
            let t = { t with phase = Syn_rcvd 0; isn_remote = Some cm.Segment.isn_local } in
            (t, [ control t syn_ack; Set_timer (Handshake, t.cfg.Config.syn_rto) ])
        | Syn_rcvd _, false, true, false when identity_ok t cm ->
            let t = { t with phase = Established } in
            establish t
              [ Note "ESTABLISHED (handshake ack)"; Cancel_timer Handshake ]
              []
        | Syn_rcvd _, true, true, false when identity_ok t cm ->
            (* Simultaneous open completing. *)
            let t = { t with phase = Established } in
            establish t [ control t bare_ack; Cancel_timer Handshake ] []
        | Syn_rcvd _, true, false, false ->
            (* Duplicate SYN: repeat our SYN|ACK. *)
            (t, [ control t syn_ack ])
        | Established, true, true, false when identity_ok t cm ->
            (* Our final ACK was lost; repeat it. *)
            (t, [ control t bare_ack ])
        (* --- Data path: a segment that was received in SYN_RCVD also
           proves the peer got our SYN|ACK (its identity embeds our ISN). --- *)
        | Syn_rcvd _, false, false, false when identity_ok t cm ->
            let t = { t with phase = Established } in
            establish t [ Cancel_timer Handshake ] [ Up (`Pdu payload) ]
        | (Established | Fin_wait_1 _ | Fin_wait_2 | Closing _ | Close_wait), false, false, false
          when identity_ok t cm ->
            (t, [ Up (`Pdu payload) ])
        (* --- Teardown --- *)
        | Established, false, false, true when identity_ok t cm ->
            let t = { t with phase = Close_wait } in
            (t, [ Note "CLOSE_WAIT (peer fin)"; control t bare_ack; Up `Peer_fin ])
        | Fin_wait_1 _, false, true, false when identity_ok t cm ->
            (* Arm a FIN_WAIT_2 idle timeout (as Linux does) so a peer
               that dies before sending its FIN cannot hang us forever —
               the teardown model finds this deadlock otherwise. *)
            ( { t with phase = Fin_wait_2 },
              [ Cancel_timer Fin_retx;
                Set_timer (Time_wait_expiry, 4. *. t.cfg.Config.msl) ] )
        | Fin_wait_1 n, false, false, true when identity_ok t cm ->
            (* Simultaneous close; keep retransmitting our FIN. *)
            ({ t with phase = Closing n }, [ control t bare_ack; Up `Peer_fin ])
        | Fin_wait_2, false, false, true when identity_ok t cm ->
            let t = { t with phase = Time_wait } in
            Sublayer.Span.close t.sp ~key:"td" ~detail:"time_wait" ();
            ( t,
              [ control t bare_ack; Up `Peer_fin;
                Set_timer (Time_wait_expiry, 2. *. t.cfg.Config.msl) ] )
        | Closing _, false, true, false when identity_ok t cm ->
            Sublayer.Span.close t.sp ~key:"td" ~detail:"time_wait" ();
            ( { t with phase = Time_wait },
              [ Cancel_timer Fin_retx; Set_timer (Time_wait_expiry, 2. *. t.cfg.Config.msl) ] )
        | Last_ack _, false, true, false when identity_ok t cm ->
            Sublayer.Span.close t.sp ~key:"td" ~detail:"closed" ();
            ( { t with phase = Closed },
              [ Cancel_timer Fin_retx; Up `Closed ] )
        | Time_wait, false, false, true when identity_ok t cm ->
            (* Retransmitted FIN: re-ack and extend the quiet period. *)
            (t, [ control t bare_ack; Set_timer (Time_wait_expiry, 2. *. t.cfg.Config.msl) ])
        | (Close_wait | Last_ack _ | Closing _), false, false, true when identity_ok t cm ->
            (* Duplicate FIN. *)
            (t, [ control t bare_ack ])
        | _ ->
            Sublayer.Stats.incr t.ctrs.c_dropped;
            (t, [ Note "segment dropped (wrong phase or identity)" ]))

let handle_timer t (tm : timer) =
  match (tm, t.phase) with
  | Handshake, Syn_sent n ->
      if n >= t.cfg.Config.syn_retries then abort t "handshake gave up"
      else begin
        Sublayer.Stats.incr t.ctrs.c_handshake_retx;
        Sublayer.Span.child t.sp ~key:"hs" ~detail:"syn" "retx";
        ( { t with phase = Syn_sent (n + 1) },
          [ Note (Printf.sprintf "SYN retransmit #%d" (n + 1)); control t syn;
            Set_timer (Handshake, backoff t.cfg.Config.syn_rto (n + 1)) ] )
      end
  | Handshake, Syn_rcvd n ->
      if n >= t.cfg.Config.syn_retries then abort t "handshake gave up"
      else begin
        Sublayer.Stats.incr t.ctrs.c_handshake_retx;
        Sublayer.Span.child t.sp ~key:"hs" ~detail:"synack" "retx";
        ( { t with phase = Syn_rcvd (n + 1) },
          [ control t syn_ack; Set_timer (Handshake, backoff t.cfg.Config.syn_rto (n + 1)) ] )
      end
  | Fin_retx, Fin_wait_1 n ->
      if n >= t.cfg.Config.fin_retries then begin
        Sublayer.Span.close t.sp ~key:"td" ~detail:"gave_up" ();
        ({ t with phase = Closed }, [ Up `Closed ])
      end
      else
        ( { t with phase = Fin_wait_1 (n + 1) },
          [ control t fin; Set_timer (Fin_retx, backoff t.cfg.Config.syn_rto (n + 1)) ] )
  | Fin_retx, Closing n ->
      (* A FIN lost during simultaneous close must still be repaired
         here, or both peers deadlock in CLOSING / FIN_WAIT_2. *)
      if n >= t.cfg.Config.fin_retries then begin
        Sublayer.Span.close t.sp ~key:"td" ~detail:"gave_up" ();
        ({ t with phase = Closed }, [ Up `Closed ])
      end
      else
        ( { t with phase = Closing (n + 1) },
          [ control t fin; Set_timer (Fin_retx, backoff t.cfg.Config.syn_rto (n + 1)) ] )
  | Fin_retx, Last_ack n ->
      if n >= t.cfg.Config.fin_retries then begin
        Sublayer.Span.close t.sp ~key:"td" ~detail:"gave_up" ();
        ({ t with phase = Closed }, [ Up `Closed ])
      end
      else
        ( { t with phase = Last_ack (n + 1) },
          [ control t fin; Set_timer (Fin_retx, backoff t.cfg.Config.syn_rto (n + 1)) ] )
  | Time_wait_expiry, Time_wait -> ({ t with phase = Closed }, [ Up `Closed ])
  | Time_wait_expiry, Fin_wait_2 ->
      Sublayer.Span.close t.sp ~key:"td" ~detail:"idle_timeout" ();
      ({ t with phase = Closed }, [ Up `Closed ])
  | (Handshake | Fin_retx | Time_wait_expiry), _ -> (t, [])
