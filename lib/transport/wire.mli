(** The standard TCP header (RFC 793, 20 bytes, no options), used by the
    monolithic baseline and as the {!Shim}'s interop target. The checksum
    is the Internet checksum over the header and payload (no pseudo-header
    — the simulator has no IP layer underneath these experiments). *)

type flags = {
  urg : bool;
  ack : bool;
  psh : bool;
  rst : bool;
  syn : bool;
  fin : bool;
}

val no_flags : flags

type t = {
  src_port : int;
  dst_port : int;
  seq : int;      (** 32-bit absolute *)
  ack : int;
  flags : flags;
  window : int;
}

val header_bytes : int

val encode : t -> payload:string -> string
(** Fills in the checksum, single pass: the field is reserved while the
    header and payload stream through, then patched in place. *)

val decode : string -> (t * string) option
(** Validates the checksum; [None] for corrupt or short segments. *)

val decode_slice : Bitkit.Slice.t -> (t * Bitkit.Slice.t) option
(** Like {!decode}, validating the checksum in place over the viewed
    bytes and returning the payload as a zero-copy view. *)

val peek_ports : Bitkit.Slice.t -> (int * int) option

val pp : Format.formatter -> t -> unit
