type app_req = [ `Connect | `Listen | `Write of string | `Read of int | `Close ]

type app_ind =
  [ `Established
  | `Data of Bitkit.Slice.t
  | `Peer_closed
  | `Closed
  | `Reset
  | `Aborted ]

type rd_req =
  [ `Connect
  | `Listen
  | `Close
  | `Transmit of int * int * Bitkit.Wirebuf.t
  | `Set_block of string
  | `Announce_block of string ]

type rd_ind =
  [ `Established
  | `Segment of int * Bitkit.Slice.t
  | `Acked of int * Bitkit.Slice.t * float option
  | `Loss of Cc.loss
  | `Peer_fin
  | `Closed
  | `Reset
  | `Aborted ]

type cm_req = [ `Connect | `Listen | `Close | `Abort | `Pdu of Bitkit.Wirebuf.t ]

type cm_ind =
  [ `Established of int * int
  | `Pdu of Bitkit.Slice.t
  | `Peer_fin
  | `Closed
  | `Reset ]

let seq32 = Sublayer.Seqspace.create ~width:32
