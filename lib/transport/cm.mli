(** The connection-management sublayer (paper §3).

    CM's service to RD is to "establish a pair of Initial Sequence
    Numbers" that are unique in time and hard to predict, using its own
    bootstrap reliability (timeout-retransmitted SYN/FIN control PDUs, no
    windows). After the handshake it stamps every data PDU with the ISN
    pair and drops segments whose ISNs do not match the connection —
    CM's "trust" guarantee that what RD sees is never a delayed duplicate
    from an earlier incarnation.

    The ISN mechanism itself ({!Isn.t}) is a constructor argument, so
    RFC 793 clocks, RFC 1948 hashes or plain counters drop in without any
    change here (experiment E10). *)

type phase =
  | Closed
  | Listen
  | Syn_sent of int       (** retries so far *)
  | Syn_rcvd of int
  | Established
  | Fin_wait_1 of int
  | Fin_wait_2
  | Closing of int
  | Time_wait
  | Close_wait
  | Last_ack of int

type t

val initial :
  ?stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  Config.t ->
  isn:Isn.t ->
  local_port:int ->
  remote_port:int ->
  t
(** Counters (when [stats] is given): [established], [resets_sent],
    [resets_received], [handshake_retx], [segments_dropped]. When [span]
    is given, [handshake] and [teardown] spans cover the control
    exchanges, with instant [rst_in]/[rst_out]/[retx] markers. *)

val phase : t -> phase
val phase_name : t -> string
val isns : t -> (int * int) option
(** [(isn_local, isn_remote)] once established. *)

type timer = Handshake | Fin_retx | Time_wait_expiry

include
  Sublayer.Machine.S
    with type t := t
     and type up_req = Iface.cm_req
     and type up_ind = Iface.cm_ind
     and type down_req = Bitkit.Wirebuf.t
     and type down_ind = Bitkit.Slice.t
     and type timer := timer
