(** An unordered-message sublayer — a drop-in {e replacement} for {!Osr}
    at the top of the stack.

    The paper (§6) frames SST and Minion as "a specific use case for
    sublayering: how do I sublayer TCP to avoid head-of-line blocking?".
    This module is that use case realised: it has exactly OSR's lower
    ports (so [Machine.Stack (Msg) (Stack (Rd) (...))] type-checks
    unchanged — tests T1–T3 at work), but offers a {e message} service
    instead of a byte stream: each message is fragmented, carried by RD's
    exactly-once segments, reassembled independently, and delivered as
    soon as {e its own} bytes arrive — a lost segment delays only the
    message it belongs to, never its neighbours.

    Rate control (the same pluggable {!Cc}) and flow control ride this
    sublayer's own header: window:16, msg_id:16, frag_off:16, msg_len:16.
    Message ids wrap at 2^16, bounding one connection to 65535 in-flight
    messages — ample for simulation workloads. *)

type header = { window : int; msg_id : int; frag_off : int; msg_len : int }

val header_bytes : int

val write_header : header -> Bitkit.Bitio.Writer.t -> unit
(** Append just the header bits — the {!Bitkit.Wirebuf.push} form used on
    the zero-copy transmit path. *)

val encode_header : header -> payload:string -> string
(** Legacy string codec (header + copied payload), kept as the reference
    the slice decoder is property-tested against. *)

val decode_header_slice : Bitkit.Slice.t -> (header * Bitkit.Slice.t) option
(** Peel the header off a slice view; the returned payload is a narrowed
    view of the input (no copy). [None] on truncation. *)

type up_req = [ `Connect | `Listen | `Send of string | `Close ]

type up_ind =
  [ `Established
  | `Msg of string  (** a complete message; arrival order, not send order *)
  | `Peer_closed
  | `Closed
  | `Reset
  | `Aborted ]

type t

val initial :
  ?stats:Sublayer.Stats.scope ->
  ?cc_stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  Config.t ->
  now:(unit -> float) ->
  t
(** Counters (when [stats] is given): [messages_sent],
    [messages_delivered]. [cc_stats] instruments the congestion-control
    instance as in {!Osr.initial}. When [span] is given, each message
    opens a fresh-trace [msg_send] span (closed when fully fragmented)
    and delivery records an instant [msg_delivered]. *)

val messages_delivered : t -> int
val messages_sent : t -> int
val stream_finished : t -> bool

include
  Sublayer.Machine.S
    with type t := t
     and type up_req := up_req
     and type up_ind := up_ind
     and type down_req = Iface.rd_req
     and type down_ind = Iface.rd_ind
     and type timer = Sublayer.Machine.Nothing.t
