type flags = { urg : bool; ack : bool; psh : bool; rst : bool; syn : bool; fin : bool }

let no_flags = { urg = false; ack = false; psh = false; rst = false; syn = false; fin = false }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : flags;
  window : int;
}

let header_bytes = 20

(* Single-pass encode: the checksum field is reserved while the header
   and payload stream through, then patched with the RFC 1071 sum over
   the whole buffer (the reserved zeros contribute nothing), so no second
   encoding pass is needed. *)
let encode t ~payload =
  let w = Bitkit.Bitio.Writer.create ~size:(header_bytes + String.length payload) () in
  let open Bitkit.Bitio.Writer in
  uint16 w t.src_port;
  uint16 w t.dst_port;
  uint32 w (t.seq land 0xFFFFFFFF);
  uint32 w (t.ack land 0xFFFFFFFF);
  bits w 5 4 (* data offset: 5 words *);
  bits w 0 6 (* reserved *);
  bit w t.flags.urg;
  bit w t.flags.ack;
  bit w t.flags.psh;
  bit w t.flags.rst;
  bit w t.flags.syn;
  bit w t.flags.fin;
  uint16 w t.window;
  let cks = reserve_uint16 w in
  uint16 w 0 (* urgent pointer *);
  bytes w payload;
  patch_uint16 w cks (internet_checksum w);
  contents w

let decode_fields r =
  let open Bitkit.Bitio.Reader in
  let src_port = uint16 r in
  let dst_port = uint16 r in
  let seq = uint32 r in
  let ack = uint32 r in
  let data_offset = bits r 4 in
  let _reserved = bits r 6 in
  let urg = bit r in
  let ackf = bit r in
  let psh = bit r in
  let rst = bit r in
  let syn = bit r in
  let fin = bit r in
  let window = uint16 r in
  let _checksum = uint16 r in
  let _urgent = uint16 r in
  if data_offset < 5 then None
  else begin
    (* Skip any options. *)
    let opts = 4 * (data_offset - 5) in
    if 8 * opts > remaining_bits r then None
    else begin
      let (_ : string) = bytes r opts in
      Some
        { src_port; dst_port; seq; ack;
          flags = { urg; ack = ackf; psh; rst; syn; fin }; window }
    end
  end

let decode s =
  if String.length s < header_bytes then None
  else if not (Bitkit.Checksum.internet_valid s) then None
  else begin
    match
      let r = Bitkit.Bitio.Reader.of_string s in
      match decode_fields r with
      | None -> None
      | Some t -> Some (t, Bitkit.Bitio.Reader.rest r)
    with
    | v -> v
    | exception Bitkit.Bitio.Reader.Truncated -> None
  end

let decode_slice sl =
  if Bitkit.Slice.length sl < header_bytes then None
  else if
    Bitkit.Checksum.internet_sub sl.Bitkit.Slice.base ~pos:sl.Bitkit.Slice.off
      ~len:sl.Bitkit.Slice.len
    <> 0
  then None
  else begin
    match
      let r = Bitkit.Bitio.Reader.of_slice sl in
      match decode_fields r with
      | None -> None
      | Some t -> Some (t, Bitkit.Bitio.Reader.rest_slice r)
    with
    | v -> v
    | exception Bitkit.Bitio.Reader.Truncated -> None
  end

let peek_ports sl =
  match
    let r = Bitkit.Bitio.Reader.of_slice sl in
    let src = Bitkit.Bitio.Reader.uint16 r in
    let dst = Bitkit.Bitio.Reader.uint16 r in
    (src, dst)
  with
  | v -> Some v
  | exception Bitkit.Bitio.Reader.Truncated -> None

let pp fmt t =
  let f = t.flags in
  Format.fprintf fmt "%d>%d seq=%d ack=%d [%s%s%s%s%s] win=%d" t.src_port t.dst_port
    t.seq t.ack
    (if f.syn then "S" else "")
    (if f.ack then "A" else "")
    (if f.fin then "F" else "")
    (if f.rst then "R" else "")
    (if f.psh then "P" else "")
    t.window
