open Sublayer.Machine

let name = "msg"

(* This sublayer's own header (it owns the bits OSR would otherwise own —
   test T3 for a replacement sublayer). *)
type header = { window : int; msg_id : int; frag_off : int; msg_len : int }

let header_bytes = 8

let write_header h w =
  Bitkit.Bitio.Writer.uint16 w h.window;
  Bitkit.Bitio.Writer.uint16 w h.msg_id;
  Bitkit.Bitio.Writer.uint16 w h.frag_off;
  Bitkit.Bitio.Writer.uint16 w h.msg_len

let encode_header h ~payload =
  let w = Bitkit.Bitio.Writer.create () in
  write_header h w;
  Bitkit.Bitio.Writer.bytes w payload;
  Bitkit.Bitio.Writer.contents w

let read_header r =
  let window = Bitkit.Bitio.Reader.uint16 r in
  let msg_id = Bitkit.Bitio.Reader.uint16 r in
  let frag_off = Bitkit.Bitio.Reader.uint16 r in
  let msg_len = Bitkit.Bitio.Reader.uint16 r in
  { window; msg_id; frag_off; msg_len }

let decode_header_slice sl =
  match
    let r = Bitkit.Bitio.Reader.of_slice sl in
    let h = read_header r in
    (h, Bitkit.Bitio.Reader.rest_slice r)
  with
  | v -> Some v
  | exception Bitkit.Bitio.Reader.Truncated -> None

type up_req = [ `Connect | `Listen | `Send of string | `Close ]

type up_ind =
  [ `Established | `Msg of string | `Peer_closed | `Closed | `Reset | `Aborted ]

type down_req = Iface.rd_req
type down_ind = Iface.rd_ind
type timer = Nothing.t

(* An in-progress incoming message. *)
type partial = { p_len : int; mutable p_got : int; p_buf : Bytes.t }

type conn = {
  cc : Cc.instance;
  (* sender: messages pending fragmentation, FIFO *)
  sendq : (int * string) list;  (* (msg_id, remaining bytes from frag_off) *)
  sendq_off : int;              (* frag_off within the head message *)
  next_id : int;
  next_off : int;               (* RD stream offset *)
  acked : int;
  peer_window : int;
  fin_requested : bool;
  fin_sent : bool;
  (* receiver *)
  partials : (int, partial) Hashtbl.t;
  buffered : int;
  advertised : int;
}

type counters = {
  c_messages_sent : Sublayer.Stats.counter;
  c_messages_delivered : Sublayer.Stats.counter;
}

type t = {
  cfg : Config.t;
  now : unit -> float;
  ctrs : counters;
  cc_stats : Sublayer.Stats.scope option;
  sp : Sublayer.Span.ctx;
  pre_sends : string list;  (* reversed *)
  pre_close : bool;
  conn : conn option;
}

let initial ?stats ?cc_stats ?span cfg ~now =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "msg"
  in
  { cfg; now;
    ctrs =
      { c_messages_sent = Sublayer.Stats.counter sc "messages_sent";
        c_messages_delivered = Sublayer.Stats.counter sc "messages_delivered" };
    cc_stats;
    sp = (match span with Some sp -> sp | None -> Sublayer.Span.disabled name);
    pre_sends = []; pre_close = false; conn = None }

let messages_delivered t = Sublayer.Stats.value t.ctrs.c_messages_delivered
let messages_sent t = Sublayer.Stats.value t.ctrs.c_messages_sent

let stream_finished t =
  match t.conn with
  | None -> false
  | Some c -> c.sendq = [] && c.acked = c.next_off

let my_header c ~msg_id ~frag_off ~msg_len =
  { window = min 0xFFFF c.advertised; msg_id; frag_off; msg_len }

let block c =
  encode_header (my_header c ~msg_id:0 ~frag_off:0 ~msg_len:0) ~payload:""

(* Fragment queued messages into RD segments within the windows. *)
let try_send t c =
  let acts = ref [] in
  let c = ref c in
  let continue = ref true in
  while !continue do
    let cn = !c in
    match cn.sendq with
    | [] -> continue := false
    | (msg_id, original) :: rest ->
        (* A zero-length message still needs a fragment on the wire (RD
           segments carry at least one sequence byte): pad it with one
           byte and signal emptiness with msg_len = 0. *)
        let body = if original = "" then "\000" else original in
        let in_flight = cn.next_off - cn.acked in
        let window =
          int_of_float (Float.min (cn.cc.Cc.window ()) (Float.of_int cn.peer_window))
        in
        let room = window - in_flight in
        let remaining = String.length body - cn.sendq_off in
        let want = min (t.cfg.Config.mss - header_bytes) remaining in
        if want <= 0 && remaining > 0 then continue := false
        else if room < want && in_flight > 0 then continue := false
        else begin
          let fragment = String.sub body cn.sendq_off want in
          let header =
            my_header cn ~msg_id ~frag_off:cn.sendq_off ~msg_len:(String.length original)
          in
          (* Msg replaces OSR at the top of the stack, so it starts the
             packet's wirebuf; RD/CM/DM push below without copying. *)
          let pdu =
            Bitkit.Wirebuf.push
              (Bitkit.Wirebuf.of_string fragment)
              ~owner:"msg" (write_header header)
          in
          if Sublayer.Span.active t.sp then begin
            (* Fragments inherit the message's trace; RD picks it up
               under the local offset key. *)
            let trace =
              Sublayer.Span.trace_of t.sp ~key:("m:" ^ string_of_int msg_id)
            in
            if trace <> 0 then
              Sublayer.Span.bind_local t.sp
                ("off:" ^ string_of_int cn.next_off) trace
          end;
          acts := Down (`Transmit (cn.next_off, want, pdu)) :: !acts;
          let finished_msg = cn.sendq_off + want >= String.length body in
          if finished_msg then
            Sublayer.Span.close t.sp
              ~key:("m:" ^ string_of_int msg_id)
              ~detail:"fragmented" ();
          c :=
            { cn with
              next_off = cn.next_off + want;
              sendq = (if finished_msg then rest else cn.sendq);
              sendq_off = (if finished_msg then 0 else cn.sendq_off + want) }
        end
  done;
  (!c, List.rev !acts)

let maybe_fin c =
  if c.fin_requested && (not c.fin_sent) && c.sendq = [] && c.acked = c.next_off then
    ({ c with fin_sent = true }, [ Down `Close ])
  else (c, [])

let enqueue t c body =
  Sublayer.Stats.incr t.ctrs.c_messages_sent;
  if String.length body > 0xFFFF then invalid_arg "Msg: message too long";
  Sublayer.Span.open_ t.sp
    ~key:("m:" ^ string_of_int c.next_id)
    ~trace:(Sublayer.Span.fresh_trace t.sp) "msg_send";
  { c with sendq = c.sendq @ [ (c.next_id, body) ]; next_id = (c.next_id + 1) land 0xFFFF }

let handle_up_req t (req : up_req) =
  match (req, t.conn) with
  | `Connect, _ -> (t, [ Down `Connect ])
  | `Listen, _ -> (t, [ Down `Listen ])
  | `Send body, None -> ({ t with pre_sends = body :: t.pre_sends }, [])
  | `Send body, Some c ->
      let c = enqueue t c body in
      let c, acts = try_send t c in
      ({ t with conn = Some c }, acts)
  | `Close, None -> ({ t with pre_close = true }, [])
  | `Close, Some c ->
      let c = { c with fin_requested = true } in
      let c, acts = maybe_fin c in
      ({ t with conn = Some c }, acts)

let accept_fragment t c ~frag_trace (h : header) payload =
  let partial =
    match Hashtbl.find_opt c.partials h.msg_id with
    | Some p -> p
    | None ->
        let real_len = if h.msg_len = 0 then 1 else h.msg_len in
        let p = { p_len = real_len; p_got = 0; p_buf = Bytes.make real_len '\000' } in
        Hashtbl.replace c.partials h.msg_id p;
        p
  in
  let n = String.length payload in
  if h.frag_off + n <= Bytes.length partial.p_buf then begin
    Bytes.blit_string payload 0 partial.p_buf h.frag_off n;
    partial.p_got <- partial.p_got + n
  end;
  let reblock c =
    let advertised = min 0xFFFF (max 0 (t.cfg.Config.rcv_buf - c.buffered)) in
    if advertised <> c.advertised then
      ({ c with advertised }, [ Down (`Set_block (block { c with advertised })) ])
    else (c, [])
  in
  if partial.p_got >= partial.p_len then begin
    Hashtbl.remove c.partials h.msg_id;
    Sublayer.Stats.incr t.ctrs.c_messages_delivered;
    Sublayer.Span.instant t.sp ~trace:frag_trace
      ~detail:(Printf.sprintf "msg_id=%d len=%d" h.msg_id h.msg_len)
      "msg_delivered";
    let body = Bytes.to_string partial.p_buf in
    let body = if h.msg_len = 0 then "" else body in
    let c = { c with buffered = max 0 (c.buffered - (partial.p_len - n)) } in
    let c, block_acts = reblock c in
    (c, Up (`Msg body) :: block_acts)
  end
  else begin
    let c = { c with buffered = c.buffered + n } in
    let c, block_acts = reblock c in
    (c, block_acts)
  end

let handle_down_ind t (ind : down_ind) =
  match (ind, t.conn) with
  | `Established, None ->
      let cc = t.cfg.Config.cc.Cc.create ~mss:t.cfg.Config.mss ~now:t.now in
      let cc =
        match t.cc_stats with Some sc -> Cc.instrument sc cc | None -> cc
      in
      let c =
        { cc; sendq = []; sendq_off = 0; next_id = 0; next_off = 0; acked = 0;
          peer_window = 0xFFFF; fin_requested = t.pre_close; fin_sent = false;
          partials = Hashtbl.create 8; buffered = 0;
          advertised = min 0xFFFF t.cfg.Config.rcv_buf }
      in
      let c = List.fold_left (enqueue t) c (List.rev t.pre_sends) in
      let c, send_acts = try_send t c in
      let c, fin_acts = maybe_fin c in
      ( { t with conn = Some c; pre_sends = [] },
        (Up `Established :: Down (`Set_block (block c)) :: send_acts) @ fin_acts )
  | `Established, Some _ -> (t, [ Note "duplicate establishment" ])
  | `Segment (offset, pdu), Some c -> (
      match decode_header_slice pdu with
      | None -> (t, [ Note "undecodable msg pdu" ])
      | Some (h, payload) ->
          let frag_trace =
            Sublayer.Span.take_local t.sp ("off:" ^ string_of_int offset)
          in
          let c = { c with peer_window = h.window } in
          (* App boundary: the fragment materialises to an owned string
             here, the receive path's one copy. *)
          let c, acts =
            accept_fragment t c ~frag_trace h (Bitkit.Slice.to_string payload)
          in
          ({ t with conn = Some c }, acts))
  | `Acked (upto, block_bytes, rtt), Some c ->
      let c =
        match decode_header_slice block_bytes with
        | Some (h, _) -> { c with peer_window = h.window }
        | None -> c
      in
      let bytes = upto - c.acked in
      if bytes > 0 then c.cc.Cc.on_ack ~bytes ~rtt;
      let c = { c with acked = max c.acked upto } in
      let c, send_acts = try_send t c in
      let c, fin_acts = maybe_fin c in
      ({ t with conn = Some c }, send_acts @ fin_acts)
  | `Loss kind, Some c ->
      c.cc.Cc.on_loss kind;
      (t, [])
  | `Peer_fin, Some _ -> (t, [ Up `Peer_closed ])
  | `Closed, _ -> (t, [ Up `Closed ])
  | `Reset, _ ->
      Sublayer.Span.close_all t.sp ~detail:"reset" ();
      ({ t with conn = None }, [ Up `Reset ])
  | `Aborted, _ ->
      Sublayer.Span.close_all t.sp ~detail:"aborted" ();
      ({ t with conn = None }, [ Up `Aborted ])
  | (`Segment _ | `Acked _ | `Loss _ | `Peer_fin), None ->
      (t, [ Note "indication before establishment" ])

let handle_timer _ (tm : timer) = Nothing.absurd tm
