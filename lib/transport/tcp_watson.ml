module Machine = Sublayer.Machine

(* Only the CM module differs from Tcp_sublayered. *)
module Lower = Machine.Stack (Cm_timer) (Machine.Stack (Conform.P_pdu) (Dm))
module Middle = Machine.Stack (Rd) (Machine.Stack (Conform.P_rd_cm) (Lower))
module Full = Machine.Stack (Osr) (Machine.Stack (Conform.P_osr_rd) (Middle))
module R = Sublayer.Runtime.Make (Full)

type t = R.t

let create engine ?trace ?(ins = Sublayer.Instrument.none)
    ?(idle_timeout = 6.0) ~name cfg ~local_port ~remote_port ~transmit ~events =
  let module I = Sublayer.Instrument in
  let now () = Sim.Engine.now engine in
  let isn = Config.make_isn cfg engine in
  let monitors = ins.I.monitors and pool = ins.I.pool in
  let sc sub = I.scope ins sub in
  let sp sub = I.span ins ~now ~track:name sub in
  let acell sub = I.alloc_cell ins sub in
  let osr_c = acell "osr" and rd_c = acell "rd" and cm_c = acell "cm-timer"
  and dm_c = acell "dm" and app_c = acell "app" and wire_c = acell "wire" in
  let alloc =
    { Sublayer.Runtime.al_top = osr_c; al_bottom = dm_c; al_app = app_c;
      al_wire = wire_c;
      al_timer =
        (* OSR, RD and CM-with-timer own timers (the Watson variant adds
           [Idle]); probe and DM slots are [Nothing.t]. *)
        (fun (tm : Full.timer) ->
        match tm with
        | Either.Left _ -> osr_c
        | Either.Right (Either.Left _) -> .
        | Either.Right (Either.Right (Either.Left _)) -> rd_c
        | Either.Right (Either.Right (Either.Right (Either.Left _))) -> .
        | Either.Right (Either.Right (Either.Right (Either.Right (Either.Left _)))) ->
            cm_c
        | Either.Right
            (Either.Right (Either.Right (Either.Right (Either.Right (Either.Left _)))))
          ->
            .
        | Either.Right
            (Either.Right (Either.Right (Either.Right (Either.Right (Either.Right _)))))
          ->
            .);
    }
  in
  let osr =
    Osr.initial ?stats:(sc "osr") ?cc_stats:(sc "cc") ?span:(sp "osr") ?pool cfg
      ~now
  in
  let rd = Rd.initial ?stats:(sc "rd") ?span:(sp "rd") cfg ~now in
  let cm =
    Cm_timer.initial ?stats:(sc "cm-timer") ?span:(sp "cm-timer") cfg ~isn
      ~local_port ~remote_port ~idle_timeout
  in
  let dm = Dm.make ?stats:(sc "dm") ?span:(sp "dm") ?pool ~local_port ~remote_port () in
  R.create engine ?trace ~alloc ~name ~transmit ~deliver:events
    ( osr,
      ( Conform.osr_rd ~alloc:(osr_c, rd_c) monitors ~conn:name,
        ( rd,
          ( Conform.rd_cm ~alloc:(rd_c, cm_c) monitors ~conn:name,
            (cm, (Conform.cm_dm ~alloc:(cm_c, dm_c) monitors ~conn:name, dm)) ) ) ) )

let connect t = R.from_above t `Connect
let listen t = R.from_above t `Listen
let write t s = R.from_above t (`Write s)
let read t n = R.from_above t (`Read n)
let close t = R.from_above t `Close
let from_wire t wire = R.from_below t wire
let halt t = R.halt t
let cm_phase t = Cm_timer.phase_name (fst (snd (snd (snd (snd (R.state t))))))
let stream_finished t = Osr.stream_finished (fst (R.state t))

let factory ?idle_timeout () =
  {
    Host.fname = "sublayered-watson";
    peek = Segment.peek_ports;
    make =
      (fun ?(ins = Sublayer.Instrument.none) engine ~name cfg ~local_port
           ~remote_port ~transmit ~events ->
        let app_req, app_ind =
          Conform.app ins.Sublayer.Instrument.monitors ~conn:name
        in
        let t =
          create engine ~ins ?idle_timeout ~name cfg ~local_port ~remote_port
            ~transmit
            ~events:(fun e -> app_ind e; events e)
        in
        {
          Host.ep_from_wire = from_wire t;
          ep_connect = (fun () -> app_req `Connect; connect t);
          ep_listen = (fun () -> app_req `Listen; listen t);
          ep_write = (fun str -> app_req (`Write str); write t str);
          ep_read = (fun n -> app_req (`Read n); read t n);
          ep_close = (fun () -> app_req `Close; close t);
          ep_abort = (fun () -> halt t);
          ep_finished = (fun () -> stream_finished t);
        });
  }
