(** The sublayered TCP header of Figure 6.

    Each sublayer owns its own header fields and its own codec; a segment
    on the wire is the onion [dm | cm | rd | osr | payload]. A sublayer's
    codec reads and writes {e only} its own fields and treats everything
    after them as an opaque payload — test T3 holds by construction, and
    {!layout} lets tests audit the bit-level field map.

    Each codec comes in three forms sharing one header writer: [write_x]
    appends just the header bits to a caller-supplied writer (what a
    {!Bitkit.Wirebuf} push uses on the zero-copy transmit path),
    [encode_x] is the legacy string codec (header plus a copied payload),
    and [decode_x_slice]/[decode_x] peel the header off a slice/string —
    the slice form hands back a zero-copy view of the rest.

    Sequence and acknowledgement numbers are absolute 32-bit values
    ([ISN + 1 + byte offset], as in standard TCP) so that the {!Shim} can
    translate to the RFC 793 header without arithmetic on hidden state. *)

(** {1 DM: demultiplexing ("essentially UDP")} *)

type dm = { src_port : int; dst_port : int }

val dm_header_bytes : int
val write_dm : dm -> Bitkit.Bitio.Writer.t -> unit
val encode_dm : dm -> payload:string -> string
val decode_dm : string -> (dm * string) option
val decode_dm_slice : Bitkit.Slice.t -> (dm * Bitkit.Slice.t) option
val peek_ports : Bitkit.Slice.t -> (int * int) option
(** Ports of a wire segment without consuming it (the mux's view). *)

(** {1 CM: connection management} *)

type cm_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

val no_cm_flags : cm_flags

type cm = {
  flags : cm_flags;
  isn_local : int;   (** sender's ISN (32-bit) *)
  isn_remote : int;  (** sender's view of the peer's ISN; 0 if unknown *)
}

val cm_header_bytes : int
val write_cm : cm -> Bitkit.Bitio.Writer.t -> unit
val encode_cm : cm -> payload:string -> string
val decode_cm : string -> (cm * string) option
val decode_cm_slice : Bitkit.Slice.t -> (cm * Bitkit.Slice.t) option

(** {1 RD: reliable delivery} *)

type sack_block = { sack_start : int; sack_end : int }
(** Received byte range [start, end) as absolute sequence numbers. *)

type rd = {
  seq : int;         (** absolute, meaningful iff [has_data] *)
  ack : int;         (** absolute, meaningful iff [has_ack] *)
  len : int;         (** segment extent in sequence space (16-bit) *)
  has_data : bool;
  has_ack : bool;
  sacks : sack_block list;  (** at most 3 *)
}

val rd_header_bytes : int
(** Fixed part, without SACK blocks. *)

val write_rd : rd -> Bitkit.Bitio.Writer.t -> unit
val encode_rd : rd -> payload:string -> string
val decode_rd : string -> (rd * string) option
val decode_rd_slice : Bitkit.Slice.t -> (rd * Bitkit.Slice.t) option

(** {1 OSR: ordering, segmenting and rate control} *)

type osr = {
  window : int;      (** receive window in bytes, 16-bit *)
  ecn_echo : bool;
  ecn_ce : bool;
}

val default_osr : osr
val osr_header_bytes : int
val write_osr : osr -> Bitkit.Bitio.Writer.t -> unit
val encode_osr : osr -> payload:string -> string
val decode_osr : string -> (osr * string) option
val decode_osr_slice : Bitkit.Slice.t -> (osr * Bitkit.Slice.t) option

val mark_ce : Bitkit.Slice.t -> Bitkit.Slice.t
(** Set the CE (congestion-experienced) bit in the OSR header of a full
    wire segment, leaving everything else intact — the action of an
    ECN-capable queue. Control segments pass through unchanged. Wire this
    as a channel's [?mark]. *)

(** {1 Whole-header audit} *)

val layout : Sublayer.Layout.t
(** The Figure 6 bit map (fixed fields, zero SACK blocks), with one owner
    per field; {!Sublayer.Layout} guarantees the owners' bit ranges are
    disjoint. *)

val header_bytes : int
(** Total fixed header: [dm + cm + rd + osr]. *)

val audit_tx : bool ref
(** With the audit armed, {!audit_wirebuf} (called by DM on every
    transmitted segment) checks the wirebuf's header stack against
    {!layout} via {!Sublayer.Layout.check_appendix_exn} — T3 asserted on
    the real wire path. Off by default; tests arm it. *)

val audit_wirebuf : Bitkit.Wirebuf.t -> unit
