open Sublayer.Machine

let name = "rec"

type t = {
  key : string;
  mac_key : string;
  local_port : int;
  remote_port : int;
  seq : int;
  pool : Bitkit.Pool.t option;
  c_sent : Sublayer.Stats.counter;
  c_failures : Sublayer.Stats.counter;
  c_copied_seal : Sublayer.Stats.counter;
  sp : Sublayer.Span.ctx;
}

(* The MAC key is derived from the cipher key so callers manage one
   secret; block 0 of an all-zero nonce is reserved for this derivation
   (data nonces embed a non-zero port). *)
let derive_mac_key key =
  String.sub (Bitkit.Chacha20.block ~key ~counter:0 ~nonce:(String.make 12 '\000')) 0 16

let initial ?stats ?span ?pool ~key ~local_port ~remote_port () =
  if String.length key <> 32 then invalid_arg "Rec: key must be 32 bytes";
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "rec"
  in
  { key; mac_key = derive_mac_key key; local_port; remote_port; seq = 0; pool;
    c_sent = Sublayer.Stats.counter sc "records_sent";
    c_failures = Sublayer.Stats.counter sc "auth_failures";
    c_copied_seal = Sublayer.Stats.counter sc "copied_seal_bytes";
    sp = (match span with Some sp -> sp | None -> Sublayer.Span.disabled name) }

let records_sent t = Sublayer.Stats.value t.c_sent
let auth_failures t = Sublayer.Stats.value t.c_failures

type up_req = Bitkit.Wirebuf.t
type up_ind = Bitkit.Slice.t
type down_req = Bitkit.Wirebuf.t
type down_ind = Bitkit.Slice.t
type timer = Nothing.t

let le64 v = String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))
let le16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xFF))

let nonce ~port ~seq = le16 port ^ "\000\000" ^ le64 seq

let read_le64 s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
  lor (b 5 lsl 40) lor (b 6 lsl 48) lor (b 7 lsl 56)

let tag_input ~port ~seq ciphertext = le16 port ^ le64 seq ^ ciphertext

let seal t pdu =
  let seq = t.seq in
  let ciphertext =
    Bitkit.Chacha20.encrypt ~key:t.key ~nonce:(nonce ~port:t.local_port ~seq) pdu
  in
  let tag =
    Bitkit.Siphash.tag ~key:t.mac_key (tag_input ~port:t.local_port ~seq ciphertext)
  in
  Sublayer.Stats.incr t.c_sent;
  ({ t with seq = seq + 1 }, le64 seq ^ ciphertext ^ tag)

let open_ t record =
  let n = String.length record in
  if n < 16 then None
  else begin
    let seq = read_le64 record 0 in
    let ciphertext = String.sub record 8 (n - 16) in
    let tag = String.sub record (n - 8) 8 in
    let expected =
      Bitkit.Siphash.tag ~key:t.mac_key (tag_input ~port:t.remote_port ~seq ciphertext)
    in
    if not (String.equal tag expected) then begin
      Sublayer.Stats.incr t.c_failures;
      None
    end
    else
      Some
        (Bitkit.Chacha20.encrypt ~key:t.key ~nonce:(nonce ~port:t.remote_port ~seq)
           ciphertext)
  end

(* Seal into a loaned slot, laid out as
   [le16 port][le64 seq][ciphertext][tag]: the first 10 + n bytes are
   exactly [tag_input], contiguous, so the MAC runs over the arena in
   place; encryption XORs the emitted plaintext in place; the record the
   peer sees is the slot minus its 2-byte port prefix. No intermediate
   flat string exists (the cipher's per-block keystream strings still
   allocate). The loan is consumed by DM's emit within this same event,
   so it is deferred-released immediately. *)
let seal_pooled t pool pdu =
  let n = Bitkit.Wirebuf.emit_cost pdu in
  let total = 2 + 8 + n + 8 in
  let slot = Bitkit.Pool.loan pool ~len:total in
  if slot = Bitkit.Pool.no_slot then None
  else begin
    let b = Bitkit.Pool.buffer pool in
    let off = Bitkit.Pool.off pool slot in
    let seq = t.seq in
    let port = t.local_port in
    Bytes.set b off (Char.chr (port land 0xFF));
    Bytes.set b (off + 1) (Char.chr ((port lsr 8) land 0xFF));
    for i = 0 to 7 do
      Bytes.set b (off + 2 + i) (Char.chr ((seq lsr (8 * i)) land 0xFF))
    done;
    Bitkit.Wirebuf.emit_into pdu b (off + 10);
    Bitkit.Chacha20.xor_into ~key:t.key ~nonce:(nonce ~port ~seq) b
      ~pos:(off + 10) ~len:n;
    (* The tag lands past the hashed region, so reading the arena through
       an alias while writing there is sound. *)
    Bitkit.Siphash.tag_into ~key:t.mac_key (Bytes.unsafe_to_string b) ~pos:off
      ~len:(10 + n) b
      (off + 10 + n);
    Sublayer.Stats.incr t.c_sent;
    Sublayer.Stats.add t.c_copied_seal n;
    Bitkit.Pool.defer_release pool slot;
    let record =
      Bitkit.Slice.sub (Bitkit.Pool.slice pool slot ~len:total) ~pos:2
        ~len:(total - 2)
    in
    Some ({ t with seq = seq + 1 }, record)
  end

(* Encryption transforms every byte, so this sublayer is a forced
   materialisation point either way: the accumulated wirebuf is emitted,
   sealed, and re-wrapped as the payload of a fresh wirebuf for DM. *)
let handle_up_req t pdu =
  let pooled =
    match t.pool with None -> None | Some pool -> seal_pooled t pool pdu
  in
  match pooled with
  | Some (t, record) ->
      Sublayer.Span.instant t.sp
        ~detail:(Printf.sprintf "seq=%d" (t.seq - 1)) "seal";
      (t, [ Down (Bitkit.Wirebuf.of_slice record) ])
  | None ->
      (* Sealing forces the wirebuf out; charge the known emit size
         directly — bracketing the process-global counter would
         over-count copies other shards make concurrently. *)
      Sublayer.Stats.add t.c_copied_seal (Bitkit.Wirebuf.copy_cost pdu);
      let plain = Bitkit.Wirebuf.to_string pdu in
      let t, record = seal t plain in
      Sublayer.Span.instant t.sp
        ~detail:(Printf.sprintf "seq=%d" (t.seq - 1)) "seal";
      (t, [ Down (Bitkit.Wirebuf.of_string record) ])

let handle_down_ind t record =
  match open_ t (Bitkit.Slice.to_string record) with
  | Some pdu ->
      Sublayer.Span.instant t.sp "open";
      (t, [ Up (Bitkit.Slice.of_string pdu) ])
  | None ->
      Sublayer.Span.instant t.sp "auth_fail";
      (t, [ Note "record failed authentication; dropped" ])

let handle_timer _ (tm : timer) = Nothing.absurd tm
