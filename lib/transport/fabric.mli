(** N-host TCP fabric for the many-flow scale workload (E21).

    [hosts] {!Host}s share one virtual switch: each host owns an ingress
    {!Sim.Channel} built from [channel], and segments are forwarded to
    whichever host owns the destination port. Flow [f] runs from host
    [f mod hosts] to host [(f+1) mod hosts] on globally unique ports, so
    thousands of connections coexist without colliding.

    Use {!ops} to hand the fabric to {!Sim.Workload.run}. *)

type t

val create :
  Sim.Engine.t ->
  ?hosts:int ->
  ?config:Config.t ->
  ?factory:Host.factory ->
  ?stats:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  ?seed:int ->
  ?link_faults:(int * int -> Sim.Faultplan.t option) ->
  channel:Sim.Channel.config ->
  flows:int ->
  bytes:int ->
  unit ->
  t
(** [create engine ~channel ~flows ~bytes ()] builds [hosts] (default 8)
    hosts and sets up [flows] listener/payload pairs of [bytes] seeded
    random bytes each ([seed] defaults to 7; payloads are deterministic
    in it). Nothing is connected until the workload launches a flow.

    When [link_faults] is given, the fabric switches from one shared
    ingress channel per host to one channel per {e directed} host pair,
    and [link_faults (src, dst)] may return a {!Sim.Faultplan} applied to
    that link alone — partial partitions impair some host pairs while the
    rest of the fabric keeps running.

    When [telemetry] is given, the fabric registers its sampling sources
    on it: [fabric.*] (the shared [stats] registry), [engine.*] (events
    fired, live timers, pending events), [slice.copied_bytes],
    [tracer.dropped] and the [gc.*] source; the host endpoints install
    {!Sublayer.Alloc} cells.  Drive sampling from the soak loop
    ({!Sim.Soak.run_driver}'s [?telemetry]).

    When [pool] is given, every host's stacks emit and stage in its arena
    slots, the fabric's transmit closure recognises slot-backed segments
    ({!Bitkit.Pool.slot_of_slice}) and loans them to the wire channel for
    the flight, and deferred releases drain after every engine event.
    Loans never change the channels' draw sequence, so a pooled run is
    schedule-identical to an unpooled one. *)

val create_sharded :
  Sim.Shard.t ->
  ?hosts:int ->
  ?config:Config.t ->
  ?factory:Host.factory ->
  ?stats:Sublayer.Stats.registry array ->
  ?tracer:Sim.Tracer.t array ->
  ?monitors:Monitor.Runtime.t array ->
  ?telemetry:Sim.Telemetry.t array ->
  ?pools:Bitkit.Pool.t array ->
  ?seed:int ->
  ?link_faults:(int * int -> Sim.Faultplan.t option) ->
  channel:Sim.Channel.config ->
  flows:int ->
  bytes:int ->
  unit ->
  t
(** The fabric partitioned across a {!Sim.Shard} group: hosts are placed
    on shards in contiguous blocks, every directed host pair gets its own
    channel on the {e source} host's engine with a private per-link RNG
    stream (seeded by [(seed, src, dst)]), and cross-shard channels
    deliver through the shard conduits. Per-link streams make each
    link's impairment draws independent of global event interleave, so a
    run of this construction is bit-identical at every shard count —
    compare against [shards = 1], which runs the single engine directly.

    Requires [hosts >= shards] and the shard group's lookahead to be at
    most [channel.delay] (jitter, reordering, serialisation and fault
    plans only ever add latency, so the conduits' conservative promise
    holds).

    [stats] / [tracer] / [monitors] / [telemetry], when given, must hold
    one instance per shard — host [h] records into its shard's — and are
    merged after the run ({!Monitor.Runtime.merged_verdicts},
    {!Sim.Tracer.merged_chrome_json},
    {!Sim.Telemetry.merged_deterministic}). Each shard's telemetry
    instance registers the same source names as the serial fabric
    ([slice.copied_bytes] only on shard 0 — the counter is process
    global), so the pointwise sum of the per-shard deterministic series
    is comparable key-for-key with a single-engine run.

    [pools], when given, likewise holds one pool per shard: a pool is
    single-domain state, so host [h] emits from its shard's pool and the
    transmit closure loans a slot to the channel only when source and
    destination share a shard — a cross-shard send copies out of the
    arena before handing the segment to the conduit. *)

val launch_site : t -> int -> int
(** Shard owning flow [f]'s client host — where
    {!Sim.Workload.run_sharded} must schedule its launch. Always 0 for
    an unsharded fabric. *)

val host_shard : t -> int -> int
(** Shard owning host [h]. *)

val ops : t -> Sim.Workload.ops
(** Launch = connect + write the flow's payload + close; finished = the
    server received the full length and the client's stream drained;
    exact = the received bytes equal the payload. *)

val hosts : t -> Host.t array

val pool_stats : t -> (string * int) list
(** The fabric's pool counters ({!Bitkit.Pool.stats}), summed across
    shards; [[]] when the fabric was built without pools. Report these
    next to ring-drop counts (e.g. via {!Sim.Workload.run}'s [?drops]). *)
