(** N-host TCP fabric for the many-flow scale workload (E21).

    [hosts] {!Host}s share one virtual switch: each host owns an ingress
    {!Sim.Channel} built from [channel], and segments are forwarded to
    whichever host owns the destination port. Flow [f] runs from host
    [f mod hosts] to host [(f+1) mod hosts] on globally unique ports, so
    thousands of connections coexist without colliding.

    Use {!ops} to hand the fabric to {!Sim.Workload.run}. *)

type t

val create :
  Sim.Engine.t ->
  ?hosts:int ->
  ?config:Config.t ->
  ?factory:Host.factory ->
  ?stats:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?seed:int ->
  ?link_faults:(int * int -> Sim.Faultplan.t option) ->
  channel:Sim.Channel.config ->
  flows:int ->
  bytes:int ->
  unit ->
  t
(** [create engine ~channel ~flows ~bytes ()] builds [hosts] (default 8)
    hosts and sets up [flows] listener/payload pairs of [bytes] seeded
    random bytes each ([seed] defaults to 7; payloads are deterministic
    in it). Nothing is connected until the workload launches a flow.

    When [link_faults] is given, the fabric switches from one shared
    ingress channel per host to one channel per {e directed} host pair,
    and [link_faults (src, dst)] may return a {!Sim.Faultplan} applied to
    that link alone — partial partitions impair some host pairs while the
    rest of the fabric keeps running. *)

val ops : t -> Sim.Workload.ops
(** Launch = connect + write the flow's payload + close; finished = the
    server received the full length and the client's stream drained;
    exact = the received bytes equal the payload. *)

val hosts : t -> Host.t array
