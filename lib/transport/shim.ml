let mask32 = 0xFFFFFFFF
let w32 v = v land mask32

type t = {
  mutable local_isn : int option;
  mutable remote_isn : int option;
  mutable snd_nxt : int;      (* wire-32: next seq we would use *)
  mutable rcv_nxt : int;      (* wire-32: next seq we expect *)
  mutable fin_sent_seq : int option;
  mutable peer_fin_seen : bool;
  mutable last_window : int;  (* our last advertised OSR window *)
  mutable handshake_done : bool;
  (* A standard FIN can arrive while earlier data is still missing; CM
     must not see (and ack) it until the byte stream is complete, or the
     peer would trim unreceived data. The FIN is parked here with its
     sequence number and connection ports until our own cumulative ack
     catches up. *)
  mutable pending_fin : (int * (int * int)) option;
  inbound : string Queue.t;
}

let create () =
  { local_isn = None; remote_isn = None; snd_nxt = 0; rcv_nxt = 0;
    fin_sent_seq = None; peer_fin_seen = false; last_window = 0xFFFF;
    handshake_done = false; pending_fin = None; inbound = Queue.create () }

let drain_inbound t =
  let l = List.of_seq (Queue.to_seq t.inbound) in
  Queue.clear t.inbound;
  l

(* Advance a wire-32 high-water mark, tolerating wrap. *)
let advance current candidate =
  let delta = (candidate - current) land mask32 in
  if delta < 0x80000000 then w32 (current + delta) else current

let std t ports ?(payload = "") ?(seq = t.snd_nxt) ?(ack = t.rcv_nxt) flags =
  let src_port, dst_port = ports in
  [ Wire.encode
      { Wire.src_port; dst_port; seq; ack; flags; window = t.last_window }
      ~payload ]

let cm_hdr t flags =
  { Segment.flags;
    (* Incoming segments speak with the peer's identity: its ISN first. *)
    isn_local = Option.value ~default:0 t.remote_isn;
    isn_remote = Option.value ~default:0 t.local_isn }

let sub t ports cm_flags rd_pdu =
  let src_port, dst_port = ports in
  Segment.encode_dm
    { Segment.src_port; dst_port }
    ~payload:(Segment.encode_cm (cm_hdr t cm_flags) ~payload:rd_pdu)

(* Once our cumulative ack reaches a parked FIN, hand it to CM. *)
let maybe_release_fin t =
  match t.pending_fin with
  | Some (fin_seq, ports) when fin_seq = t.rcv_nxt && not t.peer_fin_seen ->
      t.pending_fin <- None;
      t.peer_fin_seen <- true;
      t.rcv_nxt <- w32 (fin_seq + 1);
      Queue.add (sub t ports { Segment.no_cm_flags with fin = true } "") t.inbound
  | _ -> ()

(* --- outgoing: sublayered -> standard --- *)

let sub_to_std t wire =
  match Segment.decode_dm wire with
  | None -> []
  | Some (dm, rest) -> (
      let ports = (dm.Segment.src_port, dm.Segment.dst_port) in
      match Segment.decode_cm rest with
      | None -> []
      | Some (cm, rd_pdu) ->
          let f = cm.Segment.flags in
          if f.Segment.rst then
            std t ports { Wire.no_flags with rst = true; ack = true }
          else if f.Segment.syn && not f.Segment.ack then begin
            t.local_isn <- Some cm.Segment.isn_local;
            t.snd_nxt <- w32 (cm.Segment.isn_local + 1);
            std t ports ~seq:cm.Segment.isn_local ~ack:0
              { Wire.no_flags with syn = true }
          end
          else if f.Segment.syn && f.Segment.ack then begin
            t.local_isn <- Some cm.Segment.isn_local;
            t.remote_isn <- Some cm.Segment.isn_remote;
            t.snd_nxt <- w32 (cm.Segment.isn_local + 1);
            t.rcv_nxt <- w32 (cm.Segment.isn_remote + 1);
            std t ports ~seq:cm.Segment.isn_local ~ack:t.rcv_nxt
              { Wire.no_flags with syn = true; ack = true }
          end
          else if f.Segment.fin then begin
            t.fin_sent_seq <- Some t.snd_nxt;
            std t ports { Wire.no_flags with fin = true; ack = true }
          end
          else if f.Segment.ack then begin
            (* CM's bare acknowledgement (of a SYN or of a FIN). *)
            t.handshake_done <- true;
            std t ports { Wire.no_flags with ack = true }
          end
          else begin
            (* Data path: RD + OSR fields map directly. *)
            match Segment.decode_rd rd_pdu with
            | None -> []
            | Some (rd, osr_pdu) -> (
                match Segment.decode_osr osr_pdu with
                | None -> []
                | Some (osr_hdr, payload) ->
                    t.last_window <- osr_hdr.Segment.window;
                    if rd.Segment.has_ack then begin
                      t.rcv_nxt <- advance t.rcv_nxt rd.Segment.ack;
                      maybe_release_fin t
                    end;
                    let seq = if rd.Segment.has_data then rd.Segment.seq else t.snd_nxt in
                    if rd.Segment.has_data then
                      t.snd_nxt <- advance t.snd_nxt (w32 (rd.Segment.seq + rd.Segment.len));
                    t.handshake_done <- true;
                    std t ports ~payload ~seq
                      ~ack:(if rd.Segment.has_ack then rd.Segment.ack else t.rcv_nxt)
                      { Wire.no_flags with ack = rd.Segment.has_ack })
          end)

(* --- incoming: standard -> sublayered --- *)

let data_pdu (h : Wire.t) payload =
  let rd =
    { Segment.seq = h.Wire.seq;
      ack = h.Wire.ack;
      len = String.length payload;
      has_data = String.length payload > 0;
      has_ack = h.Wire.flags.Wire.ack;
      sacks = [] }
  in
  let osr =
    { Segment.window = h.Wire.window; ecn_echo = false; ecn_ce = false }
  in
  Segment.encode_rd rd ~payload:(Segment.encode_osr osr ~payload)

let std_to_sub t wire =
  match Wire.decode wire with
  | None -> []
  | Some (h, payload) ->
      let ports = (h.Wire.src_port, h.Wire.dst_port) in
      let f = h.Wire.flags in
      if f.Wire.rst then [ sub t ports { Segment.no_cm_flags with rst = true } "" ]
      else if f.Wire.syn && not f.Wire.ack then begin
        t.remote_isn <- Some h.Wire.seq;
        t.rcv_nxt <- w32 (h.Wire.seq + 1);
        [ sub t ports { Segment.no_cm_flags with syn = true } "" ]
      end
      else if f.Wire.syn && f.Wire.ack then begin
        t.remote_isn <- Some h.Wire.seq;
        t.rcv_nxt <- w32 (h.Wire.seq + 1);
        if t.local_isn = None then t.local_isn <- Some (w32 (h.Wire.ack - 1));
        [ sub t ports { Segment.no_cm_flags with syn = true; ack = true } "" ]
      end
      else begin
        let out = ref [] in
        let emit s = out := s :: !out in
        (* The peer's window rides every segment; deliver data and acks
           through the RD/OSR path. *)
        if String.length payload > 0 || (f.Wire.ack && not f.Wire.fin) then
          emit (sub t ports Segment.no_cm_flags (data_pdu h payload));
        (* An ack that covers our FIN completes CM's teardown. *)
        (match (f.Wire.ack, t.fin_sent_seq) with
        | true, Some fin_seq when h.Wire.ack = w32 (fin_seq + 1) ->
            emit (sub t ports { Segment.no_cm_flags with ack = true } "")
        | _ -> ());
        (* The handshake's third ack, before any data has flowed. *)
        (match (t.local_isn, t.handshake_done) with
        | Some isn, false
          when f.Wire.ack && String.length payload = 0 && h.Wire.ack = w32 (isn + 1) ->
            t.handshake_done <- true;
            emit (sub t ports { Segment.no_cm_flags with ack = true } "")
        | _ -> ());
        if f.Wire.fin then begin
          let fin_seq = w32 (h.Wire.seq + String.length payload) in
          if t.peer_fin_seen then
            (* retransmitted FIN after release: CM re-acks it *)
            emit (sub t ports { Segment.no_cm_flags with fin = true } "")
          else if fin_seq = t.rcv_nxt then begin
            (* in sequence: the byte stream is complete *)
            t.peer_fin_seen <- true;
            t.rcv_nxt <- w32 (fin_seq + 1);
            emit (sub t ports { Segment.no_cm_flags with fin = true } "")
          end
          else
            (* data still missing below the FIN: park it *)
            t.pending_fin <- Some (fin_seq, ports)
        end;
        List.rev !out
      end

let factory =
  {
    Host.fname = "sublayered+shim";
    peek = Wire.peek_ports;
    make =
      (fun ?(ins = Sublayer.Instrument.none) engine ~name cfg ~local_port ~remote_port ~transmit ~events ->
        (* The shim re-encodes every segment (it is the copying
           translation path), so arena loans would never survive it:
           strip the pool before handing the context to the inner
           sublayered endpoint. *)
        let ins = { ins with Sublayer.Instrument.pool = None } in
        let shim = create () in
        let inner_ref = ref None in
        (* The shim's codecs translate between formats, which means
           re-encoding either way — so it bridges the slice boundary by
           materialising; translation is inherently a copying path. *)
        let pump () =
          match !inner_ref with
          | None -> ()
          | Some inner ->
              List.iter
                (fun s -> inner.Host.ep_from_wire (Bitkit.Slice.of_string s))
                (drain_inbound shim)
        in
        let inner_transmit seg =
          List.iter
            (fun s -> transmit (Bitkit.Slice.of_string s))
            (sub_to_std shim (Bitkit.Slice.to_string seg));
          pump ()
        in
        let inner =
          Host.sublayered.Host.make ~ins engine ~name cfg ~local_port
            ~remote_port ~transmit:inner_transmit ~events
        in
        inner_ref := Some inner;
        {
          Host.ep_from_wire =
            (fun wire ->
              List.iter
                (fun s -> inner.Host.ep_from_wire (Bitkit.Slice.of_string s))
                (std_to_sub shim (Bitkit.Slice.to_string wire));
              pump ());
          ep_connect = inner.Host.ep_connect;
          ep_listen = inner.Host.ep_listen;
          ep_write = inner.Host.ep_write;
          ep_read = inner.Host.ep_read;
          ep_close = inner.Host.ep_close;
          ep_abort = inner.Host.ep_abort;
          ep_finished = inner.Host.ep_finished;
        });
  }
