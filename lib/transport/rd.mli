(** The reliable-delivery sublayer (paper §3).

    RD delivers segments exactly once using the ISN pair CM supplies: it
    translates stream offsets to absolute sequence numbers "by adding the
    ISN", retransmits on timeout (Jacobson/Karels RTO with Karn's rule)
    and on duplicate acks (fast retransmit), processes SACK, and keeps
    track of the window of outstanding segments. Segments may be
    delivered upward out of order — reordering is OSR's job — and
    congestion signals are summarised upward as [`Acked]/[`Loss], in the
    style the paper borrows from Narayan et al.

    RD never looks inside OSR's bytes: data segments carry the OSR PDU
    opaquely, and pure acks are stamped with the latest OSR block that
    OSR pushed down via [`Set_block]. *)

type t

val initial :
  ?stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  Config.t ->
  now:(unit -> float) ->
  t
(** Counters (when [stats] is given): [segments_sent], [retransmits],
    [fast_retransmits], [timeouts], [acks_only], [dup_segments]. When
    [span] is given, each first transmission opens a [flight] span
    (closed by the {e receiving} RD at fresh delivery, correlated
    cross-host by ISN pair + offset); retransmissions record instant
    [retx] children of the original flight span. *)

type stats = {
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable fast_retransmits : int;
  mutable timeouts : int;
  mutable acks_only : int;
  mutable dup_segments : int;
}

val stats : t -> stats
(** Fresh snapshot per call. *)

val outstanding : t -> int
(** Unacknowledged stream bytes. *)

val srtt : t -> float option
val rto : t -> float

type timer = Rto | Ack_delay

include
  Sublayer.Machine.S
    with type t := t
     and type up_req = Iface.rd_req
     and type up_ind = Iface.rd_ind
     and type down_req = Iface.cm_req
     and type down_ind = Iface.cm_ind
     and type timer := timer
