(** Multi-connection transport host: the port table that DM's
    demultiplexing service manages (binding, ephemeral allocation, listen
    dispatch), with a small socket-style API over any endpoint kind
    (sublayered or monolithic — benches compare them behind this same
    interface).

    The host routes each wire segment by its DM ports only
    ({!Segment.peek_ports} for the sublayered format, {!Wire.peek_ports}
    for the standard one); everything else in the segment is the owning
    connection's business. *)

(** What the host needs from an endpoint implementation. Wire segments
    cross this boundary as {!Bitkit.Slice} views of the received buffer
    — no copy per hop. *)
type endpoint = {
  ep_from_wire : Bitkit.Slice.t -> unit;
  ep_connect : unit -> unit;
  ep_listen : unit -> unit;
  ep_write : string -> unit;
  ep_read : int -> unit;
      (** flow-control credit: the application consumed [n] bytes *)
  ep_close : unit -> unit;
  ep_abort : unit -> unit;
      (** make the endpoint inert — timers cancelled, entry points
          no-ops — because the link underneath died.  No wire traffic,
          no events. *)
  ep_finished : unit -> bool;  (** all written bytes acknowledged *)
}

type factory = {
  fname : string;
  peek : Bitkit.Slice.t -> (int * int) option;
      (** (src_port, dst_port) of a wire segment in this endpoint's
          format. *)
  make :
    ?ins:Sublayer.Instrument.t ->
    Sim.Engine.t ->
    name:string ->
    Config.t ->
    local_port:int ->
    remote_port:int ->
    transmit:(Bitkit.Slice.t -> unit) ->
    events:(Iface.app_ind -> unit) ->
    endpoint;
}

val sublayered : factory

type t

val create :
  Sim.Engine.t ->
  ?config:Config.t ->
  ?factory:factory ->
  ?ins:Sublayer.Instrument.t ->
  name:string ->
  link:Bitkit.Slice.t Sublayer.Link.t ->
  unit ->
  t
(** The host sends segments into [link] and attaches itself as the
    link's receiver; anything honouring the {!Sublayer.Link} contract
    can sit below — a [Sim.Channel] adapter (flat topology) or a
    {!Tunnel} over another transport connection (recursive
    sublayering). The link's MTU hint, when present, caps the
    configured MSS; link death aborts every live connection
    ({!aborted} turns true, stacks go inert).

    [ins] bundles the instruments. With [ins.stats], every connection's
    sublayers register their counters in it (connections sharing the
    host aggregate into the same per-sublayer scopes); with
    [ins.tracer], they record causal spans, tracked per connection as
    ["<host>:<lport>><rport>"]; [ins.telemetry] makes the factory
    install {!Sublayer.Alloc} cells. When [ins.level > 0] the host name
    — hence every track, monitor key and (via {!Sublayer.Instrument})
    scope — is prefixed ["l<level>:"], keeping recursion levels apart
    in shared registries. Registration of [ins.stats] as a sampling
    source stays the registry owner's job;
    {!Sublayer.Stats.telemetry_source} is idempotent per (registry,
    telemetry) pair, so shared registries are safe either way. *)

val stats_registry : t -> Sublayer.Stats.registry option

val wire_link : t -> Bitkit.Slice.t Sublayer.Link.t
(** The link this host transmits into (e.g. to inspect its counters or
    kill it in tests). *)

val from_wire : t -> Bitkit.Slice.t -> unit

(** {1 Connections} *)

type conn

val connect : t -> ?local_port:int -> remote_port:int -> unit -> conn
val listen : t -> port:int -> unit
val on_accept : t -> (conn -> unit) -> unit

val write : conn -> string -> unit
val close : conn -> unit

val set_autoread : conn -> bool -> unit
(** By default every delivered byte is immediately credited back to the
    sender's flow-control window. Turning auto-read off models a slow
    application: the receive window shrinks as data accumulates, closes
    entirely when the buffer fills, and the sender stalls (keeping a
    persist probe alive). Call {!consume} to grant credit manually. *)

val consume : conn -> int -> unit
(** Grant [n] bytes of flow-control credit (reopening the window). *)

val received : conn -> string
(** Everything delivered in order so far. *)

val received_length : conn -> int
val take_received : conn -> string
(** Return and clear the delivery buffer (streaming consumers). *)

val established : conn -> bool
val peer_closed : conn -> bool
val closed : conn -> bool
val was_reset : conn -> bool

val aborted : conn -> bool
(** The stack gave up on the peer (retransmission exhausted — the
    ETIMEDOUT analogue) and tore the connection down locally. *)

val finished : conn -> bool
val local_port : conn -> int
val remote_port : conn -> int
val on_data : conn -> (string -> unit) -> unit
val on_event : conn -> (Iface.app_ind -> unit) -> unit

val connections : t -> conn list

(** {1 Wiring helpers} *)

val pair :
  Sim.Engine.t ->
  ?config:Config.t ->
  ?factory_a:factory ->
  ?factory_b:factory ->
  ?guard:bool ->
  ?stats_a:Sublayer.Stats.registry ->
  ?stats_b:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  ?level:int ->
  Sim.Channel.config ->
  t * t
(** Two hosts joined by a duplex impaired channel (each host sits on a
    channel-backed {!Sublayer.Link}). [guard] (default
    false) wraps the wire with a CRC-32 error-detection shim — the
    data-link service transport normally relies on — so corrupting
    channels drop rather than silently deliver damaged segments.
    [tracer] is shared by both hosts, so a segment's flight span opened
    on the sender is closed by the receiver (causal cross-host spans).
    [monitors] is likewise shared: one registry collects the conformance
    verdicts of every interface probe on both ends. [pool] (shared by
    both sides) makes the stacks emit and stage in arena slots; the
    transmit closures recognise slot-backed segments and loan them to
    the channel for the flight, and the engine drains deferred releases
    after every event. *)

val pair_channels :
  Sim.Engine.t ->
  ?config:Config.t ->
  ?factory_a:factory ->
  ?factory_b:factory ->
  ?guard:bool ->
  ?stats_a:Sublayer.Stats.registry ->
  ?stats_b:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  ?level:int ->
  Sim.Channel.config ->
  t * t * Bitkit.Slice.t Sim.Channel.t * Bitkit.Slice.t Sim.Channel.t
(** Like {!pair}, but also return the two directed channels (a→b then
    b→a) so fault plans can impair them mid-run. [level] (default 0)
    sets the recursion level of both hosts' instrument contexts. *)
