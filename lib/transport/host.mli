(** Multi-connection transport host: the port table that DM's
    demultiplexing service manages (binding, ephemeral allocation, listen
    dispatch), with a small socket-style API over any endpoint kind
    (sublayered or monolithic — benches compare them behind this same
    interface).

    The host routes each wire segment by its DM ports only
    ({!Segment.peek_ports} for the sublayered format, {!Wire.peek_ports}
    for the standard one); everything else in the segment is the owning
    connection's business. *)

(** What the host needs from an endpoint implementation. Wire segments
    cross this boundary as {!Bitkit.Slice} views of the received buffer
    — no copy per hop. *)
type endpoint = {
  ep_from_wire : Bitkit.Slice.t -> unit;
  ep_connect : unit -> unit;
  ep_listen : unit -> unit;
  ep_write : string -> unit;
  ep_read : int -> unit;
      (** flow-control credit: the application consumed [n] bytes *)
  ep_close : unit -> unit;
  ep_finished : unit -> bool;  (** all written bytes acknowledged *)
}

type factory = {
  fname : string;
  peek : Bitkit.Slice.t -> (int * int) option;
      (** (src_port, dst_port) of a wire segment in this endpoint's
          format. *)
  make :
    ?stats:Sublayer.Stats.registry ->
    ?tracer:Sim.Tracer.t ->
    ?monitors:Monitor.Runtime.t ->
    ?telemetry:Sim.Telemetry.t ->
    ?pool:Bitkit.Pool.t ->
    Sim.Engine.t ->
    name:string ->
    Config.t ->
    local_port:int ->
    remote_port:int ->
    transmit:(Bitkit.Slice.t -> unit) ->
    events:(Iface.app_ind -> unit) ->
    endpoint;
}

val sublayered : factory

type t

val create :
  Sim.Engine.t ->
  ?config:Config.t ->
  ?factory:factory ->
  ?stats:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  name:string ->
  transmit:(Bitkit.Slice.t -> unit) ->
  unit ->
  t
(** When [stats] is given, every connection's sublayers register their
    counters in it; connections sharing the host aggregate into the same
    per-sublayer scopes. When [tracer] is given, every connection's
    sublayers record causal spans on it, tracked per connection as
    ["<host>:<lport>><rport>"]. [telemetry] is forwarded to the endpoint
    factory, which installs {!Sublayer.Alloc} cells so allocation
    attribution can charge [<sub>.gc.minor_words] per sublayer; the
    caller (or {!pair}, which does it for its two registries) registers
    [stats] as a sampling source via
    {!Sublayer.Stats.telemetry_source} — once per registry, since hosts
    may share one. *)

val stats_registry : t -> Sublayer.Stats.registry option

val from_wire : t -> Bitkit.Slice.t -> unit

(** {1 Connections} *)

type conn

val connect : t -> ?local_port:int -> remote_port:int -> unit -> conn
val listen : t -> port:int -> unit
val on_accept : t -> (conn -> unit) -> unit

val write : conn -> string -> unit
val close : conn -> unit

val set_autoread : conn -> bool -> unit
(** By default every delivered byte is immediately credited back to the
    sender's flow-control window. Turning auto-read off models a slow
    application: the receive window shrinks as data accumulates, closes
    entirely when the buffer fills, and the sender stalls (keeping a
    persist probe alive). Call {!consume} to grant credit manually. *)

val consume : conn -> int -> unit
(** Grant [n] bytes of flow-control credit (reopening the window). *)

val received : conn -> string
(** Everything delivered in order so far. *)

val received_length : conn -> int
val take_received : conn -> string
(** Return and clear the delivery buffer (streaming consumers). *)

val established : conn -> bool
val peer_closed : conn -> bool
val closed : conn -> bool
val was_reset : conn -> bool

val aborted : conn -> bool
(** The stack gave up on the peer (retransmission exhausted — the
    ETIMEDOUT analogue) and tore the connection down locally. *)

val finished : conn -> bool
val local_port : conn -> int
val remote_port : conn -> int
val on_data : conn -> (string -> unit) -> unit
val on_event : conn -> (Iface.app_ind -> unit) -> unit

val connections : t -> conn list

(** {1 Wiring helpers} *)

val pair :
  Sim.Engine.t ->
  ?config:Config.t ->
  ?factory_a:factory ->
  ?factory_b:factory ->
  ?guard:bool ->
  ?stats_a:Sublayer.Stats.registry ->
  ?stats_b:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  Sim.Channel.config ->
  t * t
(** Two hosts joined by a duplex impaired channel. [guard] (default
    false) wraps the wire with a CRC-32 error-detection shim — the
    data-link service transport normally relies on — so corrupting
    channels drop rather than silently deliver damaged segments.
    [tracer] is shared by both hosts, so a segment's flight span opened
    on the sender is closed by the receiver (causal cross-host spans).
    [monitors] is likewise shared: one registry collects the conformance
    verdicts of every interface probe on both ends. [pool] (shared by
    both sides) makes the stacks emit and stage in arena slots; the
    transmit closures recognise slot-backed segments and loan them to
    the channel for the flight, and the engine drains deferred releases
    after every event. *)

val pair_channels :
  Sim.Engine.t ->
  ?config:Config.t ->
  ?factory_a:factory ->
  ?factory_b:factory ->
  ?guard:bool ->
  ?stats_a:Sublayer.Stats.registry ->
  ?stats_b:Sublayer.Stats.registry ->
  ?tracer:Sim.Tracer.t ->
  ?monitors:Monitor.Runtime.t ->
  ?telemetry:Sim.Telemetry.t ->
  ?pool:Bitkit.Pool.t ->
  Sim.Channel.config ->
  t * t * Bitkit.Slice.t Sim.Channel.t * Bitkit.Slice.t Sim.Channel.t
(** Like {!pair}, but also return the two directed channels (a→b then
    b→a) so fault plans can impair them mid-run. *)
