(** Watson-style timer-based connection management — the drop-in CM
    replacement the paper names explicitly (§3: "one could in principle
    seamlessly replace ... connection management (by a timer-based
    scheme [31])", citing Watson's delta-t).

    No SYN/FIN handshake exists: an initiator picks a clock-derived ISN
    (unique within the maximum segment lifetime) and starts sending data
    immediately; a listener accepts the connection on the first segment
    bearing a fresh identity. Old duplicates are excluded by the same
    ISN-stamping trust check as the three-way-handshake CM, whose
    soundness now rests on bounded packet lifetime plus clock-unique ISNs
    rather than on the handshake. Connection state is removed by {e
    timers}: after [idle_timeout] with nothing outstanding the connection
    reports the peer gone and closes.

    The module implements exactly {!Cm}'s machine ports, so
    [Machine.Stack (Rd) (Machine.Stack (Cm_timer) (Dm))] composes without
    touching RD, OSR or DM — experiment E10's CM-replacement case, for
    the whole sublayer rather than just the ISN mechanism.

    Watson's known trade-off is preserved honestly: closure is detected
    by silence, so [`Peer_fin]/[`Closed] arrive only after the idle
    timeout, and a silent peer is indistinguishable from a departed one. *)

type t

val initial :
  ?stats:Sublayer.Stats.scope ->
  ?span:Sublayer.Span.ctx ->
  Config.t ->
  isn:Isn.t ->
  local_port:int ->
  remote_port:int ->
  idle_timeout:float ->
  t
(** Counters (when [stats] is given): [established], [segments_stamped],
    [segments_dropped], [idle_closes]. When [span] is given, instant
    [established]/[idle_close] markers record the delta-t lifecycle. *)

val phase_name : t -> string

type timer = Idle

include
  Sublayer.Machine.S
    with type t := t
     and type up_req = Iface.cm_req
     and type up_ind = Iface.cm_ind
     and type down_req = Bitkit.Wirebuf.t
     and type down_ind = Bitkit.Slice.t
     and type timer := timer
