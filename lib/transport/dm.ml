open Sublayer.Machine

let name = "dm"

type conn = { local_port : int; remote_port : int }

type t = {
  conn : conn;
  pool : Bitkit.Pool.t option;
  segments_out : Sublayer.Stats.counter;
  segments_in : Sublayer.Stats.counter;
  rejected : Sublayer.Stats.counter;
  sp : Sublayer.Span.ctx;
}

type up_req = Bitkit.Wirebuf.t
type up_ind = Bitkit.Slice.t
type down_req = Bitkit.Slice.t
type down_ind = Bitkit.Slice.t
type timer = Nothing.t

let make ?stats ?span ?pool ~local_port ~remote_port () =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "dm"
  in
  {
    conn = { local_port; remote_port };
    pool;
    segments_out = Sublayer.Stats.counter sc "segments_out";
    segments_in = Sublayer.Stats.counter sc "segments_in";
    rejected = Sublayer.Stats.counter sc "rejected";
    sp = (match span with Some sp -> sp | None -> Sublayer.Span.disabled name);
  }

let conn t = t.conn

let handle_up_req t pdu =
  let header =
    { Segment.src_port = t.conn.local_port; dst_port = t.conn.remote_port }
  in
  Sublayer.Stats.incr t.segments_out;
  (* Demultiplexing is synchronous, so these mark T2 crossings rather
     than measure time; they carry no trace (DM cannot see one). *)
  Sublayer.Span.instant t.sp "segment_out";
  let wb = Bitkit.Wirebuf.push pdu ~owner:"dm" (Segment.write_dm header) in
  Segment.audit_wirebuf wb;
  match t.pool with
  | None -> (t, [ Down (Bitkit.Wirebuf.to_slice wb) ])
  | Some pool ->
      (* Emit into a loaned slot. DM's own reference dies at end of
         event; a pool-aware transmit closure that wants the bytes to
         live until channel delivery recognises the slot
         ([Pool.slot_of_slice]) and retains it before then. *)
      let slot, wire = Bitkit.Wirebuf.emit_pooled wb pool in
      if slot <> Bitkit.Pool.no_slot then Bitkit.Pool.defer_release pool slot;
      (t, [ Down wire ])

let handle_down_ind t wire =
  match Segment.decode_dm_slice wire with
  | None ->
      Sublayer.Stats.incr t.rejected;
      (t, [ Note "short segment dropped" ])
  | Some (dm, payload) ->
      if dm.Segment.dst_port = t.conn.local_port
         && dm.Segment.src_port = t.conn.remote_port
      then begin
        Sublayer.Stats.incr t.segments_in;
        Sublayer.Span.instant t.sp "segment_in";
        (t, [ Up payload ])
      end
      else begin
        Sublayer.Stats.incr t.rejected;
        (t, [ Note "segment for another connection dropped" ])
      end

let handle_timer _ t = Nothing.absurd t
