(** Tunables shared by the TCP sublayers (and the monolithic baseline). *)

type isn_choice = Clock | Hashed of int | Counter of int

type t = {
  mss : int;                 (** maximum segment (payload) size, bytes *)
  rcv_buf : int;             (** receive buffer = advertised window cap *)
  rto_init : float;
  rto_min : float;
  rto_max : float;
  syn_rto : float;           (** CM's bootstrap retransmission timeout *)
  syn_retries : int;
  fin_retries : int;
  msl : float;               (** TIME_WAIT lasts 2 × msl *)
  max_retries : int;
      (** consecutive RTO firings without cumulative progress before RD
          gives up and aborts the connection *)
  give_up_after : float;
      (** seconds without cumulative progress on outstanding data before
          RD aborts (ETIMEDOUT semantics); [infinity] disables *)
  dupack_threshold : int;
  use_sack : bool;
  nagle : bool;          (** coalesce sub-MSS writes while data is in flight *)
  delayed_ack : bool;    (** ack every second segment or after [ack_delay] *)
  ack_delay : float;
  cc : Cc.algo;
  isn : isn_choice;
}

val default : t
(** 1000-byte MSS, 64 KB buffer, Reno, hashed ISNs; Nagle and delayed
    acks off (the E16 ablation bench turns them on). *)

val make_isn : t -> Sim.Engine.t -> Isn.t
