open Sublayer.Machine

let name = "osr"

type stats = {
  mutable bytes_written : int;
  mutable bytes_delivered : int;
  mutable segments_out : int;
}

type counters = {
  c_bytes_written : Sublayer.Stats.counter;
  c_bytes_delivered : Sublayer.Stats.counter;
  c_segments_out : Sublayer.Stats.counter;
  c_copied_app_bytes : Sublayer.Stats.counter;
}

let counters_in sc =
  {
    c_bytes_written = Sublayer.Stats.counter sc "bytes_written";
    c_bytes_delivered = Sublayer.Stats.counter sc "bytes_delivered";
    c_segments_out = Sublayer.Stats.counter sc "segments_out";
    c_copied_app_bytes = Sublayer.Stats.counter sc "copied_app_bytes";
  }

(* The outgoing byte stream not yet segmented: a chunk queue with a
   partially-consumed head. Mutable by design (like [stats]); the
   surrounding state record is threaded immutably. *)
module Outbuf = struct
  type t = { chunks : string Queue.t; mutable head_used : int; mutable total : int }

  let create () = { chunks = Queue.create (); head_used = 0; total = 0 }

  let push t s =
    if String.length s > 0 then begin
      Queue.add s t.chunks;
      t.total <- t.total + String.length s
    end

  let length t = t.total

  (* Take up to [n] bytes from the front. *)
  let take t n =
    let buf = Buffer.create (min n t.total) in
    let rec go need =
      if need > 0 && not (Queue.is_empty t.chunks) then begin
        let head = Queue.peek t.chunks in
        let avail = String.length head - t.head_used in
        let grab = min avail need in
        Buffer.add_substring buf head t.head_used grab;
        if grab = avail then begin
          ignore (Queue.pop t.chunks);
          t.head_used <- 0
        end
        else t.head_used <- t.head_used + grab;
        go (need - grab)
      end
    in
    go n;
    t.total <- t.total - Buffer.length buf;
    Buffer.contents buf
end

type conn = {
  cc : Cc.instance;
  outbuf : Outbuf.t;
  wq : (int * int * int) Queue.t; (* (base, len, trace) per pending write *)
  next_off : int;
  acked : int;
  peer_window : int;
  fin_requested : bool;
  fin_sent : bool;
  peer_fin_seen : bool;
  (* receiver: offset-ascending, all >= rcv_cum. Each staged segment is
     an owned view plus the pool slot backing it ([Pool.no_slot] for heap
     storage or the borrowed in-order fast path). *)
  reasm : (int * (Bitkit.Slice.t * int)) list;
  rcv_cum : int;
  unread : int;               (* delivered but not yet consumed upstream *)
  advertised : int;
  last_ce : float;            (* when we last saw a CE mark *)
  last_ecn_reaction : float;  (* sender side: rate-limit on_ecn *)
}

type t = {
  cfg : Config.t;
  now : unit -> float;
  ctrs : counters;
  cc_stats : Sublayer.Stats.scope option;
  sp : Sublayer.Span.ctx;
  pool : Bitkit.Pool.t option;
  pre_writes : string list;  (* reversed; writes before establishment *)
  pre_close : bool;
  conn : conn option;
}

type up_req = Iface.app_req
type up_ind = Iface.app_ind
type down_req = Iface.rd_req
type down_ind = Iface.rd_ind
type timer = Persist

(* Zero-window probe interval. *)
let persist_interval = 0.5

let initial ?stats ?cc_stats ?span ?pool cfg ~now =
  let sc =
    match stats with Some sc -> sc | None -> Sublayer.Stats.unregistered "osr"
  in
  let sp =
    match span with Some sp -> sp | None -> Sublayer.Span.disabled name
  in
  { cfg; now; ctrs = counters_in sc; cc_stats; sp; pool;
    pre_writes = []; pre_close = false; conn = None }

(* Fresh snapshot of the counters in the legacy record shape. *)
let stats t =
  let v c = Sublayer.Stats.value c in
  { bytes_written = v t.ctrs.c_bytes_written;
    bytes_delivered = v t.ctrs.c_bytes_delivered;
    segments_out = v t.ctrs.c_segments_out }

let cc_name t = match t.conn with None -> t.cfg.Config.cc.Cc.algo_name | Some c -> c.cc.Cc.name
let cwnd t =
  match t.conn with
  | None -> Float.of_int t.cfg.Config.mss
  | Some c -> c.cc.Cc.window ()

let peer_window t = match t.conn with None -> 0xFFFF | Some c -> c.peer_window
let unsent_bytes t =
  match t.conn with
  | None -> List.fold_left (fun acc s -> acc + String.length s) 0 t.pre_writes
  | Some c -> Outbuf.length c.outbuf

let unread_bytes t = match t.conn with None -> 0 | Some c -> c.unread

let stream_finished t =
  match t.conn with
  | None -> false
  | Some c -> Outbuf.length c.outbuf = 0 && c.acked = c.next_off

(* Echo CE marks back to the sender for a short window after seeing one
   (a simplified version of TCP's ECE/CWR handshake). *)
let echo_period = 0.05

let my_header t c =
  { Segment.window = min 0xFFFF c.advertised;
    ecn_echo = t.now () -. c.last_ce < echo_period;
    ecn_ce = false }

let block t c = Segment.encode_osr (my_header t c) ~payload:""

(* Each write gets a fresh trace and a "buffer" span covering its wait in
   the outbound stream; [wq] remembers (offset, length, trace) so the
   segmenter below can find it. Benign mutation, like [Outbuf] itself. *)
let note_write t c base len =
  if Sublayer.Span.active t.sp && len > 0 then begin
    let trace = Sublayer.Span.fresh_trace t.sp in
    Sublayer.Span.open_ t.sp ~key:("w:" ^ string_of_int base) ~trace "buffer";
    Queue.add (base, len, trace) c.wq
  end

(* A segment [off, off+len) leaves: hand its trace down to RD under the
   endpoint-local offset key, and close the buffer spans of writes this
   segment finishes consuming. *)
let note_segment t c ~off ~len =
  if Sublayer.Span.active t.sp then begin
    (match Queue.peek_opt c.wq with
    | Some (_, _, trace) when trace <> 0 ->
        Sublayer.Span.bind_local t.sp ("off:" ^ string_of_int off) trace
    | Some _ | None -> ());
    let continue = ref true in
    while !continue do
      match Queue.peek_opt c.wq with
      | Some (base, wlen, _) when base + wlen <= off + len ->
          ignore (Queue.pop c.wq);
          Sublayer.Span.close t.sp
            ~key:("w:" ^ string_of_int base)
            ~detail:"segmented" ()
      | Some _ | None -> continue := false
    done
  end

(* Release segments while both windows have room. A single segment is
   always allowed when nothing is in flight, so a tiny window cannot
   deadlock the connection. *)
let try_send t c =
  let acts = ref [] in
  let c = ref c in
  let continue = ref true in
  while !continue do
    let cn = !c in
    let in_flight = cn.next_off - cn.acked in
    let window = int_of_float (Float.min (cn.cc.Cc.window ()) (Float.of_int cn.peer_window)) in
    let room = window - in_flight in
    let want = min t.cfg.Config.mss (Outbuf.length cn.outbuf) in
    (* Nagle: while data is in flight, hold back sub-MSS segments so
       small writes coalesce — unless the stream is being closed. *)
    let nagled =
      t.cfg.Config.nagle && want < t.cfg.Config.mss && in_flight > 0
      && not cn.fin_requested
    in
    if want > 0 && cn.peer_window <= 0 then begin
      (* Zero window: respect it (no blast-through) and keep a persist
         probe armed so a lost window update cannot deadlock us. *)
      if in_flight = 0 then acts := `Persist_arm :: !acts;
      continue := false
    end
    else if want = 0 || nagled || (room < want && in_flight > 0) then continue := false
    else begin
      let payload = Outbuf.take cn.outbuf want in
      let osr_pdu =
        Bitkit.Wirebuf.push
          (Bitkit.Wirebuf.of_string payload)
          ~owner:"osr"
          (Segment.write_osr (my_header t cn))
      in
      Sublayer.Stats.incr t.ctrs.c_segments_out;
      note_segment t cn ~off:cn.next_off ~len:want;
      acts := `Transmit (cn.next_off, want, osr_pdu) :: !acts;
      c := { cn with next_off = cn.next_off + want }
    end
  done;
  ( !c,
    List.rev_map
      (function
        | `Persist_arm -> Set_timer (Persist, persist_interval)
        | #Iface.rd_req as req -> Down req)
      !acts )

let maybe_fin c =
  if
    c.fin_requested && (not c.fin_sent) && Outbuf.length c.outbuf = 0
    && c.acked = c.next_off
  then ({ c with fin_sent = true }, [ Down `Close ])
  else (c, [])

(* Recompute the advertised window from reassembly occupancy and unread
   delivered bytes; announce reopenings proactively (the stalled peer has
   no traffic to learn from otherwise). *)
let refresh_window t c =
  let buffered =
    List.fold_left (fun acc (_, (b, _)) -> acc + Bitkit.Slice.length b) 0 c.reasm
  in
  let advertised = max 0 (min 0xFFFF (t.cfg.Config.rcv_buf - buffered - c.unread)) in
  if advertised = c.advertised then (c, [])
  else begin
    let reopened = c.advertised < t.cfg.Config.mss && advertised >= t.cfg.Config.mss in
    let c = { c with advertised } in
    if reopened then (c, [ Down (`Announce_block (block t c)) ])
    else (c, [ Down (`Set_block (block t c)) ])
  end

let handle_up_req t (req : up_req) =
  match (req, t.conn) with
  | `Connect, _ -> (t, [ Down `Connect ])
  | `Listen, _ -> (t, [ Down `Listen ])
  | `Write s, None ->
      Sublayer.Stats.add t.ctrs.c_bytes_written (String.length s);
      ({ t with pre_writes = s :: t.pre_writes }, [])
  | `Write s, Some c ->
      Sublayer.Stats.add t.ctrs.c_bytes_written (String.length s);
      note_write t c (c.next_off + Outbuf.length c.outbuf) (String.length s);
      Outbuf.push c.outbuf s;
      let c, acts = try_send t c in
      ({ t with conn = Some c }, acts)
  | `Read n, Some c ->
      let c = { c with unread = max 0 (c.unread - n) } in
      let c, acts = refresh_window t c in
      ({ t with conn = Some c }, acts)
  | `Read _, None -> (t, [])
  | `Close, None -> ({ t with pre_close = true }, [])
  | `Close, Some c ->
      let c = { c with fin_requested = true } in
      let c, acts = maybe_fin c in
      ({ t with conn = Some c }, acts)

(* Copy an out-of-order payload into storage OSR owns across events: the
   incoming wire view dies with the current event (a channel may hold it
   in a pool slot released right after delivery). The staging copy is
   the receive path's only byte copy, charged here. *)
let stage t payload =
  let len = Bitkit.Slice.length payload in
  Sublayer.Stats.add t.ctrs.c_copied_app_bytes len;
  let heap () =
    (Bitkit.Slice.of_string (Bitkit.Slice.to_string payload), Bitkit.Pool.no_slot)
  in
  match t.pool with
  | None -> heap ()
  | Some pool ->
      let slot = Bitkit.Pool.loan pool ~len in
      if slot = Bitkit.Pool.no_slot then heap ()
      else begin
        Bitkit.Slice.blit payload (Bitkit.Pool.buffer pool)
          (Bitkit.Pool.off pool slot);
        (Bitkit.Pool.slice pool slot ~len, slot)
      end

(* Insert a segment into the reassembly store and deliver the in-order
   prefix. Duplicate offsets cannot occur (RD delivers exactly once), but
   a segment at an already-delivered offset is ignored defensively.

   An in-order arrival is guaranteed to drain within this call, so it is
   entered as a borrowed view of the wire buffer — the zero-copy fast
   path; only segments that will sit in [reasm] across events are
   staged. Delivered pool slots are released at end of event, after the
   application has consumed the [`Data] views. *)
let accept_segment t c offset payload =
  if offset < c.rcv_cum || List.mem_assoc offset c.reasm then (c, [])
  else begin
    (* RD bound this offset's trace locally on fresh delivery; the reasm
       span covers the wait for in-order release. *)
    if Sublayer.Span.active t.sp then begin
      let trace = Sublayer.Span.take_local t.sp ("off:" ^ string_of_int offset) in
      Sublayer.Span.open_ t.sp
        ~key:("r:" ^ string_of_int offset)
        ~trace "reasm"
    end;
    let owned =
      if offset = c.rcv_cum then (payload, Bitkit.Pool.no_slot)
      else stage t payload
    in
    let reasm =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) ((offset, owned) :: c.reasm)
    in
    let rec drain cum reasm delivered =
      match reasm with
      | (off, (sl, slot)) :: rest when off = cum ->
          drain (cum + Bitkit.Slice.length sl) rest ((sl, slot) :: delivered)
      | _ -> (cum, reasm, List.rev delivered)
    in
    let rcv_cum, reasm, delivered = drain c.rcv_cum reasm [] in
    if Sublayer.Span.active t.sp then
      ignore
        (List.fold_left
           (fun off (sl, _) ->
             Sublayer.Span.close t.sp
               ~key:("r:" ^ string_of_int off)
               ~detail:"delivered" ();
             off + Bitkit.Slice.length sl)
           c.rcv_cum delivered);
    (match t.pool with
    | Some pool ->
        List.iter
          (fun (_, slot) ->
            if slot <> Bitkit.Pool.no_slot then Bitkit.Pool.defer_release pool slot)
          delivered
    | None -> ());
    let fresh_bytes =
      List.fold_left (fun acc (sl, _) -> acc + Bitkit.Slice.length sl) 0 delivered
    in
    Sublayer.Stats.add t.ctrs.c_bytes_delivered fresh_bytes;
    let c = { c with reasm; rcv_cum; unread = c.unread + fresh_bytes } in
    let c, window_acts = refresh_window t c in
    (c, List.map (fun (sl, _) -> Up (`Data sl)) delivered @ window_acts)
  end

(* Return any staged pool slots before dropping connection state, or an
   aborted connection would leak them for the rest of the run. *)
let free_reasm t =
  match (t.pool, t.conn) with
  | Some pool, Some c ->
      List.iter
        (fun (_, (_, slot)) ->
          if slot <> Bitkit.Pool.no_slot then Bitkit.Pool.defer_release pool slot)
        c.reasm
  | _ -> ()

let handle_down_ind t (ind : down_ind) =
  match (ind, t.conn) with
  | `Established, None ->
      let cc = t.cfg.Config.cc.Cc.create ~mss:t.cfg.Config.mss ~now:t.now in
      let cc =
        match t.cc_stats with Some sc -> Cc.instrument sc cc | None -> cc
      in
      let c =
        { cc; outbuf = Outbuf.create (); wq = Queue.create ();
          next_off = 0; acked = 0; peer_window = 0xFFFF;
          fin_requested = t.pre_close; fin_sent = false; peer_fin_seen = false;
          reasm = []; rcv_cum = 0; unread = 0;
          advertised = min 0xFFFF t.cfg.Config.rcv_buf;
          last_ce = Float.neg_infinity; last_ecn_reaction = Float.neg_infinity }
      in
      (* Pre-establishment writes get their buffer spans now — their wait
         only becomes attributable once a connection exists. *)
      ignore
        (List.fold_left
           (fun base s ->
             note_write t c base (String.length s);
             base + String.length s)
           0 (List.rev t.pre_writes));
      List.iter (Outbuf.push c.outbuf) (List.rev t.pre_writes);
      let c, send_acts = try_send t c in
      let c, fin_acts = maybe_fin c in
      ( { t with conn = Some c; pre_writes = [] },
        (Up `Established :: Down (`Set_block (block t c)) :: send_acts) @ fin_acts )
  | `Established, Some _ -> (t, [ Note "duplicate establishment ignored" ])
  | `Segment (offset, osr_pdu), Some c -> (
      match Segment.decode_osr_slice osr_pdu with
      | None -> (t, [ Note "undecodable osr pdu dropped" ])
      | Some (hdr, payload) ->
          let c = { c with peer_window = hdr.Segment.window } in
          (* A CE mark on received data is echoed back to the sender,
             whose congestion controller reacts — not ours. *)
          let c =
            if hdr.Segment.ecn_ce then { c with last_ce = t.now () } else c
          in
          let c, acts = accept_segment t c offset payload in
          let acts =
            if hdr.Segment.ecn_ce then acts @ [ Down (`Set_block (block t c)) ]
            else acts
          in
          ({ t with conn = Some c }, acts))
  | `Acked (upto, block_bytes, rtt), Some c ->
      let c =
        match Segment.decode_osr_slice block_bytes with
        | Some (hdr, _) ->
            let c =
              if hdr.Segment.ecn_echo && t.now () -. c.last_ecn_reaction > echo_period
              then begin
                (* React to congestion marks at most once per echo period
                   (standing in for once-per-RTT CWR semantics). *)
                c.cc.Cc.on_ecn ();
                { c with last_ecn_reaction = t.now () }
              end
              else c
            in
            { c with peer_window = hdr.Segment.window }
        | None -> c
      in
      let bytes = upto - c.acked in
      if bytes > 0 then c.cc.Cc.on_ack ~bytes ~rtt;
      let c = { c with acked = max c.acked upto } in
      let c, send_acts = try_send t c in
      let c, fin_acts = maybe_fin c in
      let persist_acts = if c.peer_window > 0 then [ Cancel_timer Persist ] else [] in
      ({ t with conn = Some c }, persist_acts @ send_acts @ fin_acts)
  | `Loss kind, Some c ->
      c.cc.Cc.on_loss kind;
      (t, [])
  | `Peer_fin, Some c ->
      ({ t with conn = Some { c with peer_fin_seen = true } }, [ Up `Peer_closed ])
  | `Closed, _ -> (t, [ Cancel_timer Persist; Up `Closed ])
  | `Reset, _ ->
      (* A reset connection will never reopen its window: without
         clearing state here the persist timer would probe a corpse
         forever and the engine could never quiesce. *)
      Sublayer.Span.close_all t.sp ~detail:"reset" ();
      free_reasm t;
      ({ t with conn = None }, [ Cancel_timer Persist; Up `Reset ])
  | `Aborted, _ ->
      Sublayer.Span.close_all t.sp ~detail:"aborted" ();
      free_reasm t;
      ({ t with conn = None }, [ Cancel_timer Persist; Up `Aborted ])
  | (`Segment _ | `Acked _ | `Loss _ | `Peer_fin), None ->
      (t, [ Note "indication before establishment dropped" ])

let handle_timer t Persist =
  match t.conn with
  | Some c
    when c.peer_window <= 0 && c.next_off = c.acked && Outbuf.length c.outbuf > 0 ->
      (* 1-byte window probe; the ack it provokes carries the current
         window. *)
      let payload = Outbuf.take c.outbuf 1 in
      let osr_pdu =
        Bitkit.Wirebuf.push
          (Bitkit.Wirebuf.of_string payload)
          ~owner:"osr"
          (Segment.write_osr (my_header t c))
      in
      Sublayer.Stats.incr t.ctrs.c_segments_out;
      note_segment t c ~off:c.next_off ~len:1;
      let c = { c with next_off = c.next_off + 1 } in
      ( { t with conn = Some c },
        [ Down (`Transmit (c.next_off - 1, 1, osr_pdu));
          Set_timer (Persist, persist_interval) ] )
  | Some _ | None -> (t, [])
