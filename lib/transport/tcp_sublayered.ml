module Machine = Sublayer.Machine

(* The Figure 5 stack, composed bottom-up: CM over DM, RD over that, OSR
   on top. The functor composition type-checks the narrow interfaces of
   Iface: any module with the same ports drops in. *)
module Lower = Machine.Stack (Cm) (Machine.Stack (Conform.P_pdu) (Dm))
module Middle = Machine.Stack (Rd) (Machine.Stack (Conform.P_rd_cm) (Lower))
module Full = Machine.Stack (Osr) (Machine.Stack (Conform.P_osr_rd) (Middle))
module R = Sublayer.Runtime.Make (Full)

type t = R.t

let create engine ?trace ?(ins = Sublayer.Instrument.none) ~name cfg ~local_port ~remote_port ~transmit ~events =
  let module I = Sublayer.Instrument in
  let now () = Sim.Engine.now engine in
  let isn = Config.make_isn cfg engine in
  let monitors = ins.I.monitors and pool = ins.I.pool in
  let sc sub = I.scope ins sub in
  let sp sub = I.span ins ~now ~track:name sub in
  (* Allocation cells exist only under telemetry (they add a
     gc.minor_words counter per scope to the registry, which a plain
     stats run should not see); with all cells [None] the alloc spec is
     inert beyond one atomic load per crossing. *)
  let acell sub = I.alloc_cell ins sub in
  let osr_c = acell "osr" and rd_c = acell "rd" and cm_c = acell "cm"
  and dm_c = acell "dm" and app_c = acell "app" and wire_c = acell "wire" in
  let alloc =
    { Sublayer.Runtime.al_top = osr_c; al_bottom = dm_c; al_app = app_c;
      al_wire = wire_c;
      al_timer =
        (* Only OSR, RD and CM own timers; probe and DM slots are
           [Nothing.t], discharged by refutation cases. *)
        (fun (tm : Full.timer) ->
        match tm with
        | Either.Left _ -> osr_c
        | Either.Right (Either.Left _) -> .
        | Either.Right (Either.Right (Either.Left _)) -> rd_c
        | Either.Right (Either.Right (Either.Right (Either.Left _))) -> .
        | Either.Right (Either.Right (Either.Right (Either.Right (Either.Left _)))) ->
            cm_c
        | Either.Right
            (Either.Right (Either.Right (Either.Right (Either.Right (Either.Left _)))))
          ->
            .
        | Either.Right
            (Either.Right (Either.Right (Either.Right (Either.Right (Either.Right _)))))
          ->
            .);
    }
  in
  let osr =
    Osr.initial ?stats:(sc "osr") ?cc_stats:(sc "cc") ?span:(sp "osr") ?pool cfg
      ~now
  in
  let rd = Rd.initial ?stats:(sc "rd") ?span:(sp "rd") cfg ~now in
  let cm = Cm.initial ?stats:(sc "cm") ?span:(sp "cm") cfg ~isn ~local_port ~remote_port in
  let dm = Dm.make ?stats:(sc "dm") ?span:(sp "dm") ?pool ~local_port ~remote_port () in
  R.create engine ?trace ~alloc ~name ~transmit ~deliver:events
    ( osr,
      ( Conform.osr_rd ~alloc:(osr_c, rd_c) monitors ~conn:name,
        ( rd,
          ( Conform.rd_cm ~alloc:(rd_c, cm_c) monitors ~conn:name,
            (cm, (Conform.cm_dm ~alloc:(cm_c, dm_c) monitors ~conn:name, dm)) ) ) ) )

let connect t = R.from_above t `Connect
let listen t = R.from_above t `Listen
let write t s = R.from_above t (`Write s)
let read t n = R.from_above t (`Read n)
let close t = R.from_above t `Close
let from_wire t wire = R.from_below t wire
let halt t = R.halt t

let osr_state t = fst (R.state t)
let rd_state t = fst (snd (snd (R.state t)))
let cm_state t = fst (snd (snd (snd (snd (R.state t)))))

let cm_phase t = Cm.phase_name (cm_state t)
let rd_stats t = Rd.stats (rd_state t)
let osr_stats t = Osr.stats (osr_state t)
let cwnd t = Osr.cwnd (osr_state t)
let peer_window_of t = Osr.peer_window (osr_state t)
let srtt t = Rd.srtt (rd_state t)
let outstanding t = Rd.outstanding (rd_state t)
let unsent_bytes t = Osr.unsent_bytes (osr_state t)
let stream_finished t = Osr.stream_finished (osr_state t)
let cc_name t = Osr.cc_name (osr_state t)
